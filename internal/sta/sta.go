// Package sta implements static timing analysis over a mapped netlist:
// fanout-based wire loads, LUT-interpolated cell delays and output slews
// propagated in topological order, endpoint slacks against a clock
// period with an uncertainty guard band (the paper uses 300 ps), and
// worst-path extraction per unique endpoint — the path set Figs. 12-14
// are computed from.
package sta

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"stdcelltune/internal/liberty"
	"stdcelltune/internal/netlist"
	"stdcelltune/internal/robust"
)

// Config holds the timing context.
type Config struct {
	ClockPeriod float64 // ns
	Uncertainty float64 // clock uncertainty / guard band, ns
	// WireCapPerFanout is the wire-load model: every sink adds this much
	// capacitance to the net (pF).
	WireCapPerFanout float64
	// InputSlew is the transition assumed at primary inputs and at clock
	// pins (ns).
	InputSlew float64
	// OutputLoad is the capacitance assumed at primary outputs (pF).
	OutputLoad float64
	// NetWireCap, when non-nil, overrides the fanout wire-load model
	// with an exact per-net-ID wire capacitance (pF) — typically derived
	// from placement wirelength (internal/place). Nets beyond the slice
	// fall back to the fanout model.
	NetWireCap []float64
}

// wireCap returns the wire capacitance of a net under the configured
// model.
func (c Config) wireCap(netID, fanout int) float64 {
	if c.NetWireCap != nil && netID < len(c.NetWireCap) {
		return c.NetWireCap[netID]
	}
	return c.WireCapPerFanout * float64(fanout)
}

// DefaultConfig returns the timing context used by the experiments:
// 300 ps guard band, 1.5 fF per fanout, 50 ps input slew, 5 fF output
// loads.
func DefaultConfig(period float64) Config {
	return Config{
		ClockPeriod:      period,
		Uncertainty:      0.3,
		WireCapPerFanout: 0.0015,
		InputSlew:        0.05,
		OutputLoad:       0.005,
	}
}

// Result is the outcome of one timing analysis pass.
type Result struct {
	Cfg Config

	// Per net ID.
	Load    []float64 // capacitive load seen by the driver
	Arrival []float64 // worst data arrival at the net
	Slew    []float64 // transition at the net

	// Path backtracking: per net ID, the instance input pin whose arc set
	// the arrival (empty for PI / sequential-launch nets).
	fromPin []string

	Endpoints []Endpoint

	// MaxCapViolations lists nets whose load exceeds the driver pin's
	// max_capacitance.
	MaxCapViolations []*netlist.Net

	nl *netlist.Netlist

	// eng links a snapshot produced by an Engine back to its arc cache
	// (nil for plain Analyze results); topoGen records the netlist
	// topology generation the snapshot was taken at, so Engine.Rewind can
	// reject a rewind across a topology edit.
	eng     *Engine
	topoGen uint64

	// The backward pass is memoized: synthesis asks for NetSlacks once
	// per margin step against the same Result, and required times never
	// change for an immutable snapshot. A mutex+flag rather than
	// sync.Once so a pooled snapshot can reset the memo on reuse (the
	// req/slacks backing arrays are then recycled too).
	reqMu   sync.Mutex
	reqDone bool
	req     []float64
	slacks  []float64

	// pooled marks a snapshot sitting in its engine's Recycle pool,
	// guarding against double-recycle.
	pooled bool
}

// Endpoint is a timing check location: a flip-flop D pin or a primary
// output.
type Endpoint struct {
	Name    string // FF instance name or PO name
	IsFF    bool
	Inst    *netlist.Instance // nil for POs
	Net     *netlist.Net      // the net whose arrival is checked
	Arrival float64
	Slack   float64
}

// WNS returns the worst negative slack (most negative endpoint slack;
// positive when all endpoints meet timing).
func (r *Result) WNS() float64 {
	w := math.Inf(1)
	for _, e := range r.Endpoints {
		if e.Slack < w {
			w = e.Slack
		}
	}
	if math.IsInf(w, 1) {
		return 0
	}
	return w
}

// TNS returns the total negative slack.
func (r *Result) TNS() float64 {
	t := 0.0
	for _, e := range r.Endpoints {
		if e.Slack < 0 {
			t += e.Slack
		}
	}
	return t
}

// MeetsTiming reports whether every endpoint has non-negative slack and
// no max-capacitance violations remain.
func (r *Result) MeetsTiming() bool {
	return r.WNS() >= 0 && len(r.MaxCapViolations) == 0
}

// Analyze runs one full timing pass over the netlist.
func Analyze(nl *netlist.Netlist, cfg Config) (*Result, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	nNets := 0
	for _, n := range nl.Nets {
		if n.ID >= nNets {
			nNets = n.ID + 1
		}
	}
	r := &Result{
		Cfg:     cfg,
		Load:    make([]float64, nNets),
		Arrival: make([]float64, nNets),
		Slew:    make([]float64, nNets),
		fromPin: make([]string, nNets),
		nl:      nl,
	}
	// Pass 1: net loads.
	for _, n := range nl.Nets {
		load := 0.0
		for _, s := range n.Sinks {
			if s.Inst == nil {
				load += cfg.OutputLoad
				continue
			}
			load += s.Inst.Spec.InputCap()
		}
		load += cfg.wireCap(n.ID, len(n.Sinks))
		r.Load[n.ID] = load
		if n.Driver != nil {
			// Tolerance matches the synthesis legality checks so a load
			// sitting exactly on the limit is not flagged by float dust.
			if mc := n.Driver.Spec.MaxCap(); load > mc+1e-12 {
				r.MaxCapViolations = append(r.MaxCapViolations, n)
			}
		}
	}
	// Pass 2: arrivals and slews in topological order.
	for _, n := range nl.Nets {
		if n.PrimaryIn {
			r.Arrival[n.ID] = 0
			r.Slew[n.ID] = cfg.InputSlew
		}
	}
	for _, inst := range order {
		if inst.Spec.IsSequential() {
			// Launch: clock edge at t=0, CK->Q arc with the clock slew.
			for pin, out := range inst.Out {
				arc := r.arcOf(inst, pin, inst.Spec.Clock)
				if arc == nil {
					continue
				}
				d, tr := evalArc(arc, r.Load[out.ID], cfg.InputSlew)
				r.Arrival[out.ID] = d
				r.Slew[out.ID] = tr
				r.fromPin[out.ID] = inst.Spec.Clock
			}
			continue
		}
		for pin, out := range inst.Out {
			worst := math.Inf(-1)
			worstSlew := 0.0
			worstPin := ""
			for _, in := range inst.Spec.Inputs {
				inNet := inst.In[in]
				if inNet == nil {
					continue
				}
				arc := r.arcOf(inst, pin, in)
				if arc == nil {
					continue
				}
				d, tr := evalArc(arc, r.Load[out.ID], r.Slew[inNet.ID])
				a := r.Arrival[inNet.ID] + d
				if a > worst {
					worst = a
					worstSlew = tr
					worstPin = in
				}
			}
			if math.IsInf(worst, -1) {
				// Tie cells and other arc-less outputs: time zero.
				worst, worstSlew = 0, cfg.InputSlew
			}
			r.Arrival[out.ID] = worst
			r.Slew[out.ID] = worstSlew
			r.fromPin[out.ID] = worstPin
		}
	}
	// Pass 3: endpoints.
	required := cfg.ClockPeriod - cfg.Uncertainty
	for _, inst := range nl.Instances {
		if !inst.Spec.IsSequential() {
			continue
		}
		d := inst.In["D"]
		if d == nil {
			continue
		}
		setup := inst.Spec.SetupTime(nl.Cat.Corner)
		slack := required - setup - r.Arrival[d.ID]
		r.Endpoints = append(r.Endpoints, Endpoint{
			Name: inst.Name, IsFF: true, Inst: inst, Net: d,
			Arrival: r.Arrival[d.ID], Slack: slack,
		})
	}
	for _, n := range nl.Nets {
		for _, s := range n.Sinks {
			if s.Inst != nil {
				continue
			}
			r.Endpoints = append(r.Endpoints, Endpoint{
				Name: s.Pin, Net: n,
				Arrival: r.Arrival[n.ID], Slack: required - r.Arrival[n.ID],
			})
		}
	}
	sort.Slice(r.Endpoints, func(i, j int) bool { return r.Endpoints[i].Name < r.Endpoints[j].Name })
	return r, nil
}

// arcOf finds the liberty timing arc of inst's output pin related to the
// given input pin.
func (r *Result) arcOf(inst *netlist.Instance, outPin, inPin string) *liberty.TimingArc {
	cell := r.nl.Cat.Lib.Cell(inst.Spec.Name)
	if cell == nil {
		return nil
	}
	p := cell.Pin(outPin)
	if p == nil {
		return nil
	}
	for _, a := range p.Timing {
		if a.RelatedPin == inPin {
			return a
		}
	}
	return nil
}

// evalArc interpolates the worst-case delay and transition of an arc at
// an operating point.
func evalArc(arc *liberty.TimingArc, load, slew float64) (delay, trans float64) {
	delay = math.Max(arc.CellRise.Lookup(load, slew), arc.CellFall.Lookup(load, slew))
	trans = math.Max(arc.RiseTransition.Lookup(load, slew), arc.FallTransition.Lookup(load, slew))
	return delay, trans
}

// PathStep is one cell traversal on a timing path.
type PathStep struct {
	Inst    *netlist.Instance
	FromPin string  // input pin the path enters through (CK for launch FFs)
	OutPin  string  // output pin the path leaves through
	Load    float64 // load driven at this step
	Slew    float64 // input slew at this step
	Delay   float64 // arc delay at this step
}

// Path is a worst path to one endpoint.
type Path struct {
	Endpoint Endpoint
	Steps    []PathStep // launch to capture order
}

// Depth returns the number of cells on the path (launching FF included,
// matching the paper's cell-count depth metric).
func (p *Path) Depth() int { return len(p.Steps) }

// WorstPath backtracks the worst arrival path into the given endpoint.
func (r *Result) WorstPath(ep Endpoint) Path {
	// First pass: measure the path so the steps slice is allocated once,
	// at exact size, and filled back to front — backtracking yields
	// capture->launch order, the slice wants launch->capture.
	depth := 0
	for n := ep.Net; n != nil && n.Driver != nil; {
		depth++
		if n.Driver.Spec.IsSequential() {
			break
		}
		n = n.Driver.In[r.fromPin[n.ID]]
	}
	if depth == 0 {
		return Path{Endpoint: ep}
	}
	steps := make([]PathStep, depth)
	i := depth - 1
	n := ep.Net
	for n != nil && n.Driver != nil {
		inst := n.Driver
		inPin := r.fromPin[n.ID]
		step := PathStep{
			Inst:    inst,
			FromPin: inPin,
			OutPin:  n.DrvPin,
			Load:    r.Load[n.ID],
		}
		if inst.Spec.IsSequential() {
			step.Slew = r.Cfg.InputSlew
			step.Delay = r.Arrival[n.ID]
			steps[i] = step
			break
		}
		inNet := inst.In[inPin]
		var prevArr float64
		if inNet != nil {
			step.Slew = r.Slew[inNet.ID]
			prevArr = r.Arrival[inNet.ID]
		}
		step.Delay = r.Arrival[n.ID] - prevArr
		steps[i] = step
		i--
		n = inNet
	}
	return Path{Endpoint: ep, Steps: steps}
}

// WorstPaths extracts the worst path for every unique endpoint — the
// population Figs. 12-14 plot.
func (r *Result) WorstPaths() []Path {
	out := make([]Path, 0, len(r.Endpoints))
	for _, ep := range r.Endpoints {
		out = append(out, r.WorstPath(ep))
	}
	return out
}

// WorstPathsCtx is WorstPaths with the backtracking fanned out over the
// robust worker pool. Each endpoint's path lands at its endpoint's index,
// so the result order (and every path in it) is identical to the serial
// WorstPaths; backtracking only reads the Result, so workers never
// contend. Cancelling the context abandons unstarted endpoints and
// returns the context error.
func (r *Result) WorstPathsCtx(ctx context.Context) ([]Path, error) {
	out := make([]Path, len(r.Endpoints))
	if workers := robust.DefaultWorkers(); workers > 1 {
		err := robust.ForEach(ctx, workers, len(r.Endpoints), func(_ context.Context, i int) error {
			out[i] = r.WorstPath(r.Endpoints[i])
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	// One worker means no parallelism to win; skip the pool's per-task
	// goroutine and run inline (the result is identical either way).
	for i, ep := range r.Endpoints {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i] = r.WorstPath(ep)
	}
	return out, nil
}

// CriticalPath returns the worst path of the worst endpoint.
func (r *Result) CriticalPath() (Path, error) {
	if len(r.Endpoints) == 0 {
		return Path{}, fmt.Errorf("sta: no endpoints")
	}
	worst := r.Endpoints[0]
	for _, ep := range r.Endpoints[1:] {
		if ep.Slack < worst.Slack {
			worst = ep
		}
	}
	return r.WorstPath(worst), nil
}

// OperatingPoint describes where in its LUT a cell instance operates.
type OperatingPoint struct {
	Inst    *netlist.Instance
	OutPin  string
	OutIdx  int // index of OutPin in Inst.Spec.Outputs
	Load    float64
	WorstIn float64 // worst input slew across connected input pins
}

// OperatingPoints lists the (load, slew) point of every combinational and
// sequential instance output — the data the restriction-legality checks
// and the Fig. 7 style occupancy analyses consume.
func (r *Result) OperatingPoints() []OperatingPoint {
	out := make([]OperatingPoint, 0, len(r.nl.Instances))
	r.EachOperatingPoint(func(op OperatingPoint) {
		out = append(out, op)
	})
	return out
}

// EachOperatingPoint streams the operating points without materializing
// the slice — the per-iteration legality scan runs over every instance
// on every snapshot, so the allocation matters. Output pins visit in
// spec order (the slice form previously used map order, which was
// nondeterministic; no caller depended on it).
//
// When the Result is an engine's current snapshot, the scan reads the
// engine's resolved pin-to-net wiring instead of the instances'
// string-keyed In/Out maps — the map lookups used to dominate the
// legality scan's profile. The values are identical either way; the
// map path remains for plain Analyze results and stale snapshots.
func (r *Result) EachOperatingPoint(fn func(OperatingPoint)) {
	eng := r.eng
	fast := eng != nil && eng.last == r && eng.haveState
	for _, inst := range r.nl.Instances {
		if fast && !inst.Spec.IsSequential() {
			cc := eng.cellFor(inst)
			if len(cc.pins) > 0 {
				// All pins of an instance share the same input wiring;
				// worst input slew comes from any pin's resolved slots.
				worstIn := r.Cfg.InputSlew
				for _, n := range cc.pins[0].ins {
					if n != nil && r.Slew[n.ID] > worstIn {
						worstIn = r.Slew[n.ID]
					}
				}
				for oi := range cc.pins {
					p := &cc.pins[oi]
					if p.out == nil {
						continue
					}
					fn(OperatingPoint{
						Inst: inst, OutPin: p.name, OutIdx: oi, Load: r.Load[p.out.ID], WorstIn: worstIn,
					})
				}
			}
			continue
		}
		worstIn := r.Cfg.InputSlew
		for _, pin := range inst.Spec.Inputs {
			if n := inst.In[pin]; n != nil && r.Slew[n.ID] > worstIn {
				worstIn = r.Slew[n.ID]
			}
		}
		for oi, pin := range inst.Spec.Outputs {
			n := inst.Out[pin]
			if n == nil {
				continue
			}
			fn(OperatingPoint{
				Inst: inst, OutPin: pin, OutIdx: oi, Load: r.Load[n.ID], WorstIn: worstIn,
			})
		}
	}
}
