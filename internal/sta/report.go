package sta

import (
	"fmt"
	"strings"
)

// ReportTiming renders the worst path of the worst endpoint in the
// classic report_timing layout: one line per cell with incremental and
// cumulative delay, then the slack calculation. This is the report a
// designer reads first after synthesis.
func (r *Result) ReportTiming() string {
	cp, err := r.CriticalPath()
	if err != nil {
		return "no timing paths\n"
	}
	return r.ReportPath(cp)
}

// ReportPath renders one path.
func (r *Result) ReportPath(p Path) string {
	var b strings.Builder
	ep := p.Endpoint
	fmt.Fprintf(&b, "Startpoint: %s\n", startpointOf(p))
	kind := "output port"
	if ep.IsFF {
		kind = fmt.Sprintf("%s/D (setup check)", ep.Name)
	} else {
		kind = fmt.Sprintf("port %s", ep.Name)
	}
	fmt.Fprintf(&b, "Endpoint:   %s\n", kind)
	fmt.Fprintf(&b, "Clock period %.3f ns, uncertainty %.3f ns\n\n",
		r.Cfg.ClockPeriod, r.Cfg.Uncertainty)
	fmt.Fprintf(&b, "%-28s %-10s %9s %9s\n", "point", "cell", "incr", "path")
	b.WriteString(strings.Repeat("-", 60) + "\n")
	cum := 0.0
	for _, s := range p.Steps {
		cum += s.Delay
		fmt.Fprintf(&b, "%-28s %-10s %9.4f %9.4f\n",
			fmt.Sprintf("%s/%s->%s", s.Inst.Name, s.FromPin, s.OutPin),
			s.Inst.Spec.Name, s.Delay, cum)
	}
	b.WriteString(strings.Repeat("-", 60) + "\n")
	required := r.Cfg.ClockPeriod - r.Cfg.Uncertainty
	if ep.IsFF {
		setup := ep.Inst.Spec.SetupTime(r.nl.Cat.Corner)
		required -= setup
		fmt.Fprintf(&b, "%-28s %20s %9.4f\n", "data required (T - unc - setup)", "", required)
	} else {
		fmt.Fprintf(&b, "%-28s %20s %9.4f\n", "data required (T - unc)", "", required)
	}
	fmt.Fprintf(&b, "%-28s %20s %9.4f\n", "data arrival", "", ep.Arrival)
	verdict := "MET"
	if ep.Slack < 0 {
		verdict = "VIOLATED"
	}
	fmt.Fprintf(&b, "%-28s %20s %9.4f  (%s)\n", "slack", "", ep.Slack, verdict)
	return b.String()
}

func startpointOf(p Path) string {
	if len(p.Steps) == 0 {
		return "primary input"
	}
	first := p.Steps[0]
	if first.Inst.Spec.IsSequential() {
		return fmt.Sprintf("%s/%s (clock edge)", first.Inst.Name, first.FromPin)
	}
	return fmt.Sprintf("%s/%s", first.Inst.Name, first.FromPin)
}
