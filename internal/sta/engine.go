package sta

import (
	"fmt"
	"math"
	"os"
	"runtime/debug"
	"sort"

	"stdcelltune/internal/liberty"
	"stdcelltune/internal/netlist"
	"stdcelltune/internal/obs"
	"stdcelltune/internal/stdcell"
)

// engineVerify, set via STA_VERIFY=1, makes every engine cross-check its
// snapshots against a fresh full Analyze — the debug switch for hunting
// any bit-identity violation in a real flow (slow: quadratic).
var engineVerify = os.Getenv("STA_VERIFY") == "1"

// Process-wide incremental-STA counters. Always-on (one atomic add per
// analysis); the dirty-cone histogram records how many instances each
// incremental update re-evaluated.
var (
	staFullAnalyses = obs.Default().Counter("sta.full_analyses")
	staIncremental  = obs.Default().Counter("sta.incremental_updates")
	staDirtyCone    = obs.Default().Histogram("sta.dirty_cone")
)

// FullAnalyses returns the process-wide count of full timing analyses
// run by engines (incremental fallbacks included).
func FullAnalyses() int64 { return staFullAnalyses.Value() }

// IncrementalUpdates returns the process-wide count of incremental
// (dirty-cone) timing updates.
func IncrementalUpdates() int64 { return staIncremental.Value() }

// IncrementalRatio returns incremental / (incremental + full) analyses
// process-wide — the fraction of timing passes the engines served
// without a whole-design propagation. NaN before any analysis ran (the
// metrics snapshot renders NaN as -1).
func IncrementalRatio() float64 {
	inc := float64(staIncremental.Value())
	full := float64(staFullAnalyses.Value())
	if inc+full == 0 {
		return 0 // not NaN: the gauge must stay JSON-marshalable
	}
	return inc / (inc + full)
}

// defaultFullFrac is the dirty-set fraction of the instance count above
// which Analyze falls back to a full propagation: past that point the
// cone bookkeeping costs more than sweeping every instance through the
// (mostly cache-hitting) arc evaluations.
const defaultFullFrac = 0.25

// minFullThreshold keeps the fallback from triggering on tiny designs,
// where even a whole-netlist dirty set is cheap to process as a cone.
const minFullThreshold = 64

// Engine is an incremental timing analyzer bound to one netlist. It
// registers as a netlist.Observer, accumulates a dirty frontier from the
// edit journal (resizes, rewires, inserted repeaters), and on Analyze
// re-propagates only the affected fanout cone — or the whole design when
// the dirty set crosses FullFrac. Every Analyze returns a snapshot
// *Result bit-identical to what a fresh sta.Analyze over the current
// netlist would produce.
//
// An Engine is not safe for concurrent use; each synthesis run owns one.
type Engine struct {
	nl  *netlist.Netlist
	cfg Config

	// Working state, per net ID.
	load    []float64
	arrival []float64
	slew    []float64
	fromPin []string
	overCap []bool

	// Per instance ID: resolved timing arcs plus a self-validating
	// (load, slew) -> (delay, trans) cache per arc. Entries invalidate
	// themselves by bitwise input comparison, so staleness after Rewind
	// or resize-revert is harmless. Each entry keeps two value-cache
	// generations (cur/alt): accept/revert probing resizes A->B->A
	// constantly, and the second slot turns the rebuild-on-revert into a
	// pointer swap. The slice holds values, and every slice a cell needs
	// is carved from the engine's arena — steady-state retargeting
	// allocates nothing.
	cells []engCell
	arena engArena

	// Dirty frontier accumulated from journal notifications.
	dirtyInst map[int]*netlist.Instance
	dirtyLoad map[int]*netlist.Net

	haveState bool    // arrays describe the current netlist
	last      *Result // snapshot matching the arrays; nil while dirt is pending
	// prev is the most recent snapshot taken from the arrays; when an
	// incremental update turns out bitwise no-op (a healed revert), it is
	// re-used instead of allocating an identical snapshot.
	prev *Result

	// Worklist scratch for runIncremental: queuedGen[id] == queueGen marks
	// an instance as queued this round (O(1) reset by bumping the gen);
	// heap is the dirty-frontier min-heap's backing array, reused across
	// rounds so cone updates never allocate.
	queuedGen []uint32
	queueGen  uint32
	heap      intHeap

	// free holds snapshots returned through Recycle; the next snapshot
	// reuses their slices instead of allocating. Never holds last/prev.
	free []*Result

	// Endpoint skeleton cached per topology generation: the set and sorted
	// order of endpoints only changes on topology edits, so snapshots just
	// fill in values.
	epRefs   []epRef
	epGen    uint64
	epRefsOK bool

	// FullFrac overrides the full-analysis fallback threshold (fraction
	// of the instance count); zero means defaultFullFrac.
	FullFrac float64

	fullCount int
	incCount  int
}

// engArena carves the small fixed-size slices every engine cell needs
// (pin slots, wiring, value caches) out of large chunks, so building or
// re-targeting thousands of cells costs a handful of allocations per
// chunk instead of seven per cell. Carved slices are abandoned, never
// freed — a dropped cell's slices die with the chunk once nothing else
// references it, and the engine's working set is bounded by the netlist.
type engArena struct {
	pins []engPin
	nets []*netlist.Net
	f64  []float64
	bs   []bool
}

const (
	arenaPinChunk = 1 << 9
	arenaNetChunk = 1 << 11
	arenaF64Chunk = 1 << 13
	arenaBChunk   = 1 << 11
)

func (a *engArena) carvePins(n int) []engPin {
	if len(a.pins) < n {
		size := arenaPinChunk
		if size < n {
			size = n
		}
		a.pins = make([]engPin, size)
	}
	b := a.pins[:n:n]
	a.pins = a.pins[n:]
	return b
}

func (a *engArena) carveNets(n int) []*netlist.Net {
	if len(a.nets) < n {
		size := arenaNetChunk
		if size < n {
			size = n
		}
		a.nets = make([]*netlist.Net, size)
	}
	b := a.nets[:n:n]
	a.nets = a.nets[n:]
	return b
}

func (a *engArena) carveF64(n int) []float64 {
	if len(a.f64) < n {
		size := arenaF64Chunk
		if size < n {
			size = n
		}
		a.f64 = make([]float64, size)
	}
	b := a.f64[:n:n]
	a.f64 = a.f64[n:]
	return b
}

func (a *engArena) carveBools(n int) []bool {
	if len(a.bs) < n {
		size := arenaBChunk
		if size < n {
			size = n
		}
		a.bs = make([]bool, size)
	}
	b := a.bs[:n:n]
	a.bs = a.bs[n:]
	return b
}

// engCell is one instance's cached arc resolution. spec is the cell the
// cur value caches describe; altSpec the previously displaced cell the
// alt caches describe (nil until the first retarget). A zero engCell
// means "not built yet".
type engCell struct {
	spec    *stdcell.Spec
	altSpec *stdcell.Spec
	pins    []engPin
}

// epRef is one entry of the cached endpoint skeleton: everything about
// an endpoint except the analyzed values (setup is re-read from the
// instance spec at snapshot time — resizes change it without a
// topology edit).
type epRef struct {
	name string
	isFF bool
	inst *netlist.Instance
	net  *netlist.Net
}

// pinVals is one spec-generation of an output pin's cache: the resolved
// timing arcs (a read-only slice shared via the catalogue's arc cache)
// and the self-validating (load, slew) -> (delay, trans) value cache,
// one slot per arc.
type pinVals struct {
	arcs []*liberty.TimingArc
	load []float64
	slew []float64
	d    []float64
	tr   []float64
	ok   []bool
}

// engPin caches the arcs of one output pin plus the resolved output and
// input nets of its instance — string-keyed In/Out map lookups are the
// hottest cost in cone re-evaluation, and pin-to-net wiring only changes
// through Connect/Drive (which drop the cell from the cache). For
// combinational cells the slots align with spec.Inputs; sequential cells
// keep a single clock-arc slot. cur describes engCell.spec, alt the
// displaced engCell.altSpec; a revert resize swaps them back with both
// value caches still warm.
type engPin struct {
	name     string
	out      *netlist.Net
	ins      []*netlist.Net
	cur, alt pinVals
}

// eval interpolates arc i at (load, slew), serving bitwise-matching
// repeats from the cache. Mirrors evalArc exactly on a miss.
func (p *engPin) eval(i int, arc *liberty.TimingArc, load, slew float64) (float64, float64) {
	v := &p.cur
	if v.ok[i] && v.load[i] == load && v.slew[i] == slew {
		return v.d[i], v.tr[i]
	}
	d := math.Max(arc.CellRise.Lookup(load, slew), arc.CellFall.Lookup(load, slew))
	tr := math.Max(arc.RiseTransition.Lookup(load, slew), arc.FallTransition.Lookup(load, slew))
	v.ok[i], v.load[i], v.slew[i], v.d[i], v.tr[i] = true, load, slew, d, tr
	return d, tr
}

// NewEngine binds an incremental engine to the netlist and starts
// observing its edit journal. The first Analyze runs a full propagation;
// call Close when done to detach the observer.
func NewEngine(nl *netlist.Netlist, cfg Config) *Engine {
	e := &Engine{
		nl:        nl,
		cfg:       cfg,
		dirtyInst: make(map[int]*netlist.Instance),
		dirtyLoad: make(map[int]*netlist.Net),
	}
	nl.Observe(e)
	return e
}

// Close detaches the engine from the netlist's edit journal.
func (e *Engine) Close() { e.nl.Unobserve(e) }

// Counts returns how many full analyses and incremental updates this
// engine has run.
func (e *Engine) Counts() (full, incremental int) { return e.fullCount, e.incCount }

// --- netlist.Observer ----------------------------------------------

func (e *Engine) markInst(inst *netlist.Instance) {
	e.dirtyInst[inst.ID] = inst
	e.last = nil
}

func (e *Engine) markLoad(n *netlist.Net) {
	e.dirtyLoad[n.ID] = n
	e.last = nil
}

// OnResize re-evaluates the instance (its arcs changed) and the loads of
// every connected net: input nets see a different input capacitance,
// output nets a different max_capacitance limit.
func (e *Engine) OnResize(inst *netlist.Instance, from, to *stdcell.Spec) {
	e.markInst(inst)
	for _, n := range inst.In {
		e.markLoad(n)
	}
	for _, n := range inst.Out {
		e.markLoad(n)
	}
}

func (e *Engine) OnConnect(inst *netlist.Instance, pin string, old, n *netlist.Net) {
	e.markInst(inst)
	e.dropCell(inst)
	if old != nil {
		e.markLoad(old)
	}
	e.markLoad(n)
}

func (e *Engine) OnDrive(inst *netlist.Instance, pin string, n *netlist.Net) {
	e.markInst(inst)
	e.dropCell(inst)
	e.markLoad(n)
}

// dropCell discards the cached arc/net resolution of an instance whose
// pin-to-net wiring changed; cellFor rebuilds it on next touch.
func (e *Engine) dropCell(inst *netlist.Instance) {
	if inst.ID < len(e.cells) {
		e.cells[inst.ID] = engCell{}
	}
}

func (e *Engine) OnNewNet(n *netlist.Net) { e.markLoad(n) }

func (e *Engine) OnNewInstance(inst *netlist.Instance) { e.markInst(inst) }

// OnSinksChanged fires when a net's primary-output sink set changes —
// which also changes the endpoint population, so the cached skeleton is
// dropped (topology generation alone won't catch a bare MarkOutput).
func (e *Engine) OnSinksChanged(n *netlist.Net) {
	e.markLoad(n)
	e.epRefsOK = false
}

// --- analysis ------------------------------------------------------

// Analyze brings the timing state up to date with the netlist and
// returns a snapshot. With no pending edits the previous snapshot is
// returned as-is; a small dirty set is re-propagated as a cone from the
// dirty frontier; a large one falls back to a full pass (which still
// serves unchanged operating points from the arc cache).
func (e *Engine) Analyze() (*Result, error) {
	if e.haveState && e.last != nil {
		return e.last, nil
	}
	order, err := e.nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	e.ensureSizes()
	full := !e.haveState
	if !full {
		threshold := int(e.fullFrac() * float64(len(e.nl.Instances)))
		if threshold < minFullThreshold {
			threshold = minFullThreshold
		}
		if len(e.dirtyInst)+len(e.dirtyLoad) > threshold {
			full = true
		}
	}
	reuse := false
	if full {
		e.runFull(order)
		staFullAnalyses.Add(1)
		e.fullCount++
	} else {
		cone, changed, err := e.runIncremental(order)
		if err != nil {
			return nil, err
		}
		staIncremental.Add(1)
		staDirtyCone.ObserveN(int64(cone))
		e.incCount++
		// A bitwise no-op update (typically a healed revert) re-uses the
		// previous snapshot instead of allocating an identical one.
		reuse = !changed && e.prev != nil && e.prev.topoGen == e.nl.TopoGen()
	}
	clear(e.dirtyInst)
	clear(e.dirtyLoad)
	e.haveState = true
	if reuse {
		e.last = e.prev
	} else {
		e.last = e.snapshot()
		e.prev = e.last
	}
	if engineVerify {
		if err := e.verifySnapshot(e.last, full); err != nil {
			if os.Getenv("STA_VERIFY_PANIC") == "1" {
				os.Stderr.Write(debug.Stack())
				panic(err)
			}
			return nil, err
		}
	}
	return e.last, nil
}

// verifySnapshot compares a snapshot against a fresh full Analyze and
// reports the first bitwise difference. Only active under STA_VERIFY=1.
func (e *Engine) verifySnapshot(got *Result, wasFull bool) error {
	want, err := Analyze(e.nl, e.cfg)
	if err != nil {
		return err
	}
	mode := "incremental"
	if wasFull {
		mode = "full"
	}
	for i := range want.Load {
		if math.Float64bits(got.Load[i]) != math.Float64bits(want.Load[i]) {
			detail := ""
			for _, n := range e.nl.Nets {
				if n.ID != i {
					continue
				}
				drv := "<none>"
				if n.Driver != nil {
					drv = n.Driver.Name + ":" + n.Driver.Spec.Name
				}
				detail = fmt.Sprintf(" driver=%s sinks=[", drv)
				for _, s := range n.Sinks {
					if s.Inst == nil {
						detail += fmt.Sprintf(" PO(%s)", s.Pin)
						continue
					}
					detail += fmt.Sprintf(" %s:%s(cap %g)", s.Inst.Name, s.Inst.Spec.Name, s.Inst.Spec.InputCap())
				}
				detail += " ]"
			}
			return fmt.Errorf("sta verify (%s): Load[%d] = %v want %v%s", mode, i, got.Load[i], want.Load[i], detail)
		}
		if math.Float64bits(got.Arrival[i]) != math.Float64bits(want.Arrival[i]) {
			return fmt.Errorf("sta verify (%s): Arrival[%d] = %v want %v", mode, i, got.Arrival[i], want.Arrival[i])
		}
		if math.Float64bits(got.Slew[i]) != math.Float64bits(want.Slew[i]) {
			return fmt.Errorf("sta verify (%s): Slew[%d] = %v want %v", mode, i, got.Slew[i], want.Slew[i])
		}
		if got.fromPin[i] != want.fromPin[i] {
			return fmt.Errorf("sta verify (%s): fromPin[%d] = %q want %q", mode, i, got.fromPin[i], want.fromPin[i])
		}
	}
	if len(got.Endpoints) != len(want.Endpoints) {
		return fmt.Errorf("sta verify (%s): %d endpoints want %d", mode, len(got.Endpoints), len(want.Endpoints))
	}
	for i := range want.Endpoints {
		g, w := got.Endpoints[i], want.Endpoints[i]
		if g.Name != w.Name || math.Float64bits(g.Slack) != math.Float64bits(w.Slack) {
			return fmt.Errorf("sta verify (%s): endpoint %d = %+v want %+v", mode, i, g, w)
		}
	}
	if len(got.MaxCapViolations) != len(want.MaxCapViolations) {
		return fmt.Errorf("sta verify (%s): %d max-cap violations want %d", mode, len(got.MaxCapViolations), len(want.MaxCapViolations))
	}
	for i := range want.MaxCapViolations {
		if got.MaxCapViolations[i] != want.MaxCapViolations[i] {
			return fmt.Errorf("sta verify (%s): max-cap violation %d differs", mode, i)
		}
	}
	return nil
}

func (e *Engine) fullFrac() float64 {
	if e.FullFrac > 0 {
		return e.FullFrac
	}
	return defaultFullFrac
}

// ensureSizes grows the per-net arrays and the per-instance cell cache
// to the current netlist extent.
func (e *Engine) ensureSizes() {
	nNets := 0
	for _, n := range e.nl.Nets {
		if n.ID >= nNets {
			nNets = n.ID + 1
		}
	}
	for len(e.load) < nNets {
		e.load = append(e.load, 0)
		e.arrival = append(e.arrival, 0)
		e.slew = append(e.slew, 0)
		e.fromPin = append(e.fromPin, "")
		e.overCap = append(e.overCap, false)
	}
	for len(e.cells) < len(e.nl.Instances) {
		e.cells = append(e.cells, engCell{})
	}
}

// computeLoad mirrors Analyze's pass 1 for one net: the exact same sink
// sum in sink order (float addition is not associative, so the order is
// part of the bit-identity contract) plus the wire-load model, and the
// max-capacitance check against the current driver spec. Reports whether
// the stored load changed.
func (e *Engine) computeLoad(n *netlist.Net) (loadChanged, overChanged bool) {
	load := 0.0
	for _, s := range n.Sinks {
		if s.Inst == nil {
			load += e.cfg.OutputLoad
			continue
		}
		load += s.Inst.Spec.InputCap()
	}
	load += e.cfg.wireCap(n.ID, len(n.Sinks))
	loadChanged = load != e.load[n.ID]
	e.load[n.ID] = load
	over := false
	if n.Driver != nil {
		if mc := n.Driver.Spec.MaxCap(); load > mc+1e-12 {
			over = true
		}
	}
	overChanged = over != e.overCap[n.ID]
	e.overCap[n.ID] = over
	return loadChanged, overChanged
}

func (e *Engine) cellFor(inst *netlist.Instance) *engCell {
	c := &e.cells[inst.ID]
	switch {
	case c.spec == inst.Spec:
	case c.spec == nil:
		e.buildCell(c, inst)
	default:
		e.retarget(c, inst)
	}
	return c
}

// specSlots is the number of arc/value slots an output pin needs: one
// per data input, or a single clock-arc slot for sequential cells.
func specSlots(spec *stdcell.Spec) int {
	if spec.IsSequential() {
		return 1
	}
	return len(spec.Inputs)
}

// ensureVals makes v hold exactly slots cold cache entries, reusing the
// existing backing when it is large enough.
func (e *Engine) ensureVals(v *pinVals, slots int) {
	if cap(v.load) < slots {
		v.load = e.arena.carveF64(slots)
		v.slew = e.arena.carveF64(slots)
		v.d = e.arena.carveF64(slots)
		v.tr = e.arena.carveF64(slots)
		v.ok = e.arena.carveBools(slots)
		for i := range v.ok {
			v.ok[i] = false
		}
		return
	}
	v.load = v.load[:slots]
	v.slew = v.slew[:slots]
	v.d = v.d[:slots]
	v.tr = v.tr[:slots]
	v.ok = v.ok[:slots]
	for i := range v.ok {
		v.ok[i] = false
	}
}

// wire resolves the pin-to-net wiring of pin pi for the given spec from
// the instance's string-keyed maps — the only place the maps are
// consulted; evaluation reads the resolved slices.
func (e *Engine) wire(p *engPin, inst *netlist.Instance, spec *stdcell.Spec, pi int) {
	p.name = spec.Outputs[pi]
	p.out = inst.Out[p.name]
	slots := specSlots(spec)
	if cap(p.ins) < slots {
		p.ins = e.arena.carveNets(slots)
	} else {
		p.ins = p.ins[:slots]
	}
	if spec.IsSequential() {
		p.ins[0] = nil
		return
	}
	for i, in := range spec.Inputs {
		p.ins[i] = inst.In[in]
	}
}

// buildCell resolves an instance's cell from scratch into c. This runs
// once per instance (and after wiring edits); resizes go through
// retarget and reuse everything built here.
func (e *Engine) buildCell(c *engCell, inst *netlist.Instance) {
	spec := inst.Spec
	arcs := e.nl.Cat.TimingArcs(spec)
	slots := specSlots(spec)
	c.spec = spec
	c.altSpec = nil
	c.pins = e.arena.carvePins(len(spec.Outputs))
	for pi := range c.pins {
		p := &c.pins[pi]
		e.wire(p, inst, spec, pi)
		p.cur.arcs = arcs[pi]
		e.ensureVals(&p.cur, slots)
	}
}

// eqStrings reports element-wise equality; same-family specs share
// their pin-name slices, so this is almost always a len+pointer check.
func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// retarget repoints a built cell at the instance's new spec without
// allocating. The common resize ping-pong (probe B, revert to A) swaps
// the cur/alt value caches, keeping both generations warm; any other
// transition evicts the alt slot in place with fresh arcs from the
// catalogue cache. Wiring is re-resolved only when the new spec's pin
// names actually differ — same-family resizes share them.
func (e *Engine) retarget(c *engCell, inst *netlist.Instance) {
	spec := inst.Spec
	if len(spec.Outputs) != len(c.pins) {
		// Different output structure: rebuild outright (never happens for
		// in-family resizes; cheap and correct if it ever does).
		e.buildCell(c, inst)
		return
	}
	rewire := !eqStrings(spec.Inputs, c.spec.Inputs) || !eqStrings(spec.Outputs, c.spec.Outputs) ||
		spec.IsSequential() != c.spec.IsSequential()
	swap := c.altSpec == spec
	var arcs [][]*liberty.TimingArc
	if !swap {
		arcs = e.nl.Cat.TimingArcs(spec)
	}
	slots := specSlots(spec)
	for pi := range c.pins {
		p := &c.pins[pi]
		p.cur, p.alt = p.alt, p.cur
		if !swap {
			p.cur.arcs = arcs[pi]
			e.ensureVals(&p.cur, slots)
		}
		if rewire {
			e.wire(p, inst, spec, pi)
		}
	}
	c.spec, c.altSpec = spec, c.spec
}

// store updates a net's propagated values; returns whether anything
// changed bitwise (NaN compares unequal, so faulted values always count
// as changed — conservative, never wrong).
func (e *Engine) store(id int, arrival, slew float64, from string) bool {
	if e.arrival[id] == arrival && e.slew[id] == slew && e.fromPin[id] == from {
		return false
	}
	e.arrival[id], e.slew[id], e.fromPin[id] = arrival, slew, from
	return true
}

// evalInst re-evaluates one instance exactly as Analyze's pass 2 does:
// sequential launch through the clock arc, combinational worst over the
// spec's input order, arc-less outputs at time zero. Reports whether any
// output net's (arrival, slew, fromPin) changed.
func (e *Engine) evalInst(inst *netlist.Instance) bool {
	cc := e.cellFor(inst)
	changed := false
	if inst.Spec.IsSequential() {
		for pi := range cc.pins {
			p := &cc.pins[pi]
			out := p.out
			if out == nil {
				continue
			}
			arc := p.cur.arcs[0]
			if arc == nil {
				continue
			}
			d, tr := p.eval(0, arc, e.load[out.ID], e.cfg.InputSlew)
			if e.store(out.ID, d, tr, inst.Spec.Clock) {
				changed = true
			}
		}
		return changed
	}
	for pi := range cc.pins {
		p := &cc.pins[pi]
		out := p.out
		if out == nil {
			continue
		}
		worst := math.Inf(-1)
		worstSlew := 0.0
		worstPin := ""
		for i, in := range inst.Spec.Inputs {
			inNet := p.ins[i]
			if inNet == nil {
				continue
			}
			arc := p.cur.arcs[i]
			if arc == nil {
				continue
			}
			d, tr := p.eval(i, arc, e.load[out.ID], e.slew[inNet.ID])
			a := e.arrival[inNet.ID] + d
			if a > worst {
				worst = a
				worstSlew = tr
				worstPin = in
			}
		}
		if math.IsInf(worst, -1) {
			worst, worstSlew = 0, e.cfg.InputSlew
		}
		if e.store(out.ID, worst, worstSlew, worstPin) {
			changed = true
		}
	}
	return changed
}

// runFull recomputes everything from scratch into the working arrays —
// the same three passes as Analyze, with arc evaluations flowing through
// the per-instance cache so repeated operating points stay cheap.
func (e *Engine) runFull(order []*netlist.Instance) {
	for i := range e.load {
		e.load[i], e.arrival[i], e.slew[i] = 0, 0, 0
		e.fromPin[i] = ""
		e.overCap[i] = false
	}
	for _, n := range e.nl.Nets {
		e.computeLoad(n)
	}
	for _, n := range e.nl.Nets {
		if n.PrimaryIn {
			e.arrival[n.ID] = 0
			e.slew[n.ID] = e.cfg.InputSlew
		}
	}
	for _, inst := range order {
		e.evalInst(inst)
	}
}

// runIncremental refreshes the loads of the dirty nets, then
// re-propagates from the dirty instances in topological-position order,
// following fanout only where a net's propagated values actually changed
// bitwise — unchanged inputs reproduce bitwise-unchanged outputs, so the
// cone is exactly the set of instances whose state can differ. Returns
// the number of instances re-evaluated.
func (e *Engine) runIncremental(order []*netlist.Instance) (cone int, changed bool, err error) {
	idx, err := e.nl.TopoIndexes()
	if err != nil {
		return 0, false, err
	}
	for _, n := range e.dirtyLoad {
		lc, oc := e.computeLoad(n)
		if oc {
			changed = true // max-cap violation set differs
		}
		if lc {
			changed = true
			if n.Driver != nil {
				// The driver sees a different load; its delays change.
				e.dirtyInst[n.Driver.ID] = n.Driver
			}
		}
	}
	for len(e.queuedGen) < len(e.nl.Instances) {
		e.queuedGen = append(e.queuedGen, 0)
	}
	e.queueGen++
	gen := e.queueGen
	h := e.heap[:0]
	defer func() { e.heap = h }()
	push := func(inst *netlist.Instance) {
		if e.queuedGen[inst.ID] != gen {
			e.queuedGen[inst.ID] = gen
			h.push(idx[inst.ID])
		}
	}
	for _, inst := range e.dirtyInst {
		// A resized flop changes its setup time — an endpoint-slack
		// change no per-net array reflects.
		if inst.Spec.IsSequential() {
			changed = true
		}
		push(inst)
	}
	for len(h) > 0 {
		inst := order[h.pop()]
		cone++
		if !e.evalInst(inst) {
			continue
		}
		changed = true
		cc := &e.cells[inst.ID] // populated by evalInst's cellFor
		for pi := range cc.pins {
			out := cc.pins[pi].out
			if out == nil {
				continue
			}
			for _, s := range out.Sinks {
				// Sequential sinks capture, they don't re-launch; the
				// endpoint slacks are rebuilt from arrivals anyway.
				if s.Inst != nil && !s.Inst.Spec.IsSequential() {
					push(s.Inst)
				}
			}
		}
	}
	return cone, changed, nil
}

// Recycle returns a snapshot this engine produced to its free pool, so
// the next snapshot reuses its slices instead of allocating fresh ones.
// Callers recycle only snapshots they know are dead — a probe result
// rejected and reverted away, never published outside the optimizer
// loop. The engine's current snapshot (last), results of other engines,
// and double-recycles are all ignored, so a conservative caller can
// never corrupt live state. Recycling the no-op-reuse candidate (prev,
// with edits pending) vacates that slot first: the caller vouches the
// snapshot is dead, which costs at most one avoidable re-snapshot if
// the pending edits turn out to be a bitwise no-op.
func (e *Engine) Recycle(r *Result) {
	if r == nil || r.eng != e || r.pooled || r == e.last {
		return
	}
	if r == e.prev {
		e.prev = nil
	}
	r.pooled = true
	e.free = append(e.free, r)
}

// snapshot copies the working state into an immutable Result — the same
// shape Analyze returns, with endpoints and max-cap violations rebuilt
// in Analyze's exact order. Recycled snapshots are reused when the pool
// has one; a Result is bitwise-identical either way.
func (e *Engine) snapshot() *Result {
	var r *Result
	if n := len(e.free); n > 0 {
		r = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		r.pooled = false
		r.reqDone = false
	} else {
		r = &Result{}
	}
	r.Cfg = e.cfg
	r.Load = append(r.Load[:0], e.load...)
	r.Arrival = append(r.Arrival[:0], e.arrival...)
	r.Slew = append(r.Slew[:0], e.slew...)
	r.fromPin = append(r.fromPin[:0], e.fromPin...)
	r.nl = e.nl
	r.eng = e
	r.topoGen = e.nl.TopoGen()
	r.MaxCapViolations = r.MaxCapViolations[:0]
	for _, n := range e.nl.Nets {
		if e.overCap[n.ID] {
			r.MaxCapViolations = append(r.MaxCapViolations, n)
		}
	}
	required := e.cfg.ClockPeriod - e.cfg.Uncertainty
	refs := e.endpointRefs()
	if cap(r.Endpoints) < len(refs) {
		r.Endpoints = make([]Endpoint, 0, len(refs))
	} else {
		r.Endpoints = r.Endpoints[:0]
	}
	for _, ref := range refs {
		ep := Endpoint{
			Name: ref.name, IsFF: ref.isFF, Inst: ref.inst, Net: ref.net,
			Arrival: r.Arrival[ref.net.ID],
		}
		if ref.isFF {
			ep.Slack = required - ref.inst.Spec.SetupTime(e.nl.Cat.Corner) - ep.Arrival
		} else {
			ep.Slack = required - ep.Arrival
		}
		r.Endpoints = append(r.Endpoints, ep)
	}
	return r
}

// endpointRefs returns the endpoint skeleton — the FF D pins and primary
// outputs in Analyze's sorted order — rebuilding it only after topology
// edits (resizes never add or remove endpoints).
func (e *Engine) endpointRefs() []epRef {
	if e.epRefsOK && e.epGen == e.nl.TopoGen() {
		return e.epRefs
	}
	e.epRefs = e.epRefs[:0]
	for _, inst := range e.nl.Instances {
		if !inst.Spec.IsSequential() {
			continue
		}
		d := inst.In["D"]
		if d == nil {
			continue
		}
		e.epRefs = append(e.epRefs, epRef{name: inst.Name, isFF: true, inst: inst, net: d})
	}
	for _, n := range e.nl.Nets {
		for _, s := range n.Sinks {
			if s.Inst != nil {
				continue
			}
			e.epRefs = append(e.epRefs, epRef{name: s.Pin, net: n})
		}
	}
	sort.Slice(e.epRefs, func(i, j int) bool { return e.epRefs[i].name < e.epRefs[j].name })
	e.epGen = e.nl.TopoGen()
	e.epRefsOK = true
	return e.epRefs
}

// Rewind restores the engine's working state to a previously returned
// snapshot and discards the pending dirty frontier. The caller must have
// returned the netlist to the exact state the Result describes — the
// revert path of a rejected downsize batch does precisely that — so no
// re-analysis is needed. Topology edits since the snapshot (which
// reverts cannot undo) make the rewind invalid.
func (e *Engine) Rewind(r *Result) error {
	if r.eng != e {
		return fmt.Errorf("sta: rewind to a result from a different engine")
	}
	if r.topoGen != e.nl.TopoGen() {
		return fmt.Errorf("sta: rewind across a topology edit")
	}
	e.ensureSizes()
	if len(r.Load) != len(e.load) {
		return fmt.Errorf("sta: rewind across a netlist growth (%d -> %d nets)", len(r.Load), len(e.load))
	}
	copy(e.load, r.Load)
	copy(e.arrival, r.Arrival)
	copy(e.slew, r.Slew)
	copy(e.fromPin, r.fromPin)
	for i := range e.overCap {
		e.overCap[i] = false
	}
	for _, n := range r.MaxCapViolations {
		e.overCap[n.ID] = true
	}
	clear(e.dirtyInst)
	clear(e.dirtyLoad)
	e.haveState = true
	e.last = r
	// The arrays now describe r exactly, so r is also the snapshot a
	// bitwise no-op update may legally reuse; leaving an older prev in
	// place would let a later no-change Analyze resurrect stale state.
	e.prev = r
	return nil
}

// intHeap is a plain min-heap of topo-order positions; small and
// allocation-light compared to container/heap's interface calls.
type intHeap []int

func (h *intHeap) push(v int) {
	*h = append(*h, v)
	a := *h
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if a[parent] <= a[i] {
			break
		}
		a[parent], a[i] = a[i], a[parent]
		i = parent
	}
}

func (h *intHeap) pop() int {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a = a[:last]
	*h = a
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(a) && a[l] < a[small] {
			small = l
		}
		if r < len(a) && a[r] < a[small] {
			small = r
		}
		if small == i {
			break
		}
		a[i], a[small] = a[small], a[i]
		i = small
	}
	return top
}
