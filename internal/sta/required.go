package sta

import "math"

// RequiredTimes computes, per net ID, the latest time data may arrive on
// the net without violating any downstream endpoint — a backward pass
// mirroring the forward arrival propagation. The per-net slack
// (required - arrival) drives the area-recovery downsizing in synthesis:
// a cell whose output net has generous slack can afford to get slower.
//
// The backward pass reuses the arc delays implied by the forward
// solution (same loads and slews), which is the standard STA required-
// time approximation.
func (r *Result) RequiredTimes() []float64 {
	req := make([]float64, len(r.Arrival))
	for i := range req {
		req[i] = math.Inf(1)
	}
	// Seed endpoints.
	reqBase := r.Cfg.ClockPeriod - r.Cfg.Uncertainty
	for _, ep := range r.Endpoints {
		lim := reqBase
		if ep.IsFF {
			lim -= ep.Inst.Spec.SetupTime(r.nl.Cat.Corner)
		}
		if lim < req[ep.Net.ID] {
			req[ep.Net.ID] = lim
		}
	}
	// Reverse topological order: process instances after all their
	// fanout instances.
	order, err := r.nl.TopoOrder()
	if err != nil {
		return req
	}
	for i := len(order) - 1; i >= 0; i-- {
		inst := order[i]
		if inst.Spec.IsSequential() {
			continue
		}
		for pin, out := range inst.Out {
			ro := req[out.ID]
			if math.IsInf(ro, 1) {
				continue
			}
			for _, in := range inst.Spec.Inputs {
				inNet := inst.In[in]
				if inNet == nil {
					continue
				}
				arc := r.arcOf(inst, pin, in)
				if arc == nil {
					continue
				}
				d, _ := evalArc(arc, r.Load[out.ID], r.Slew[inNet.ID])
				if lim := ro - d; lim < req[inNet.ID] {
					req[inNet.ID] = lim
				}
			}
		}
	}
	return req
}

// NetSlacks returns required - arrival per net ID (positive = margin).
// Nets with no downstream endpoint have +Inf slack.
func (r *Result) NetSlacks() []float64 {
	req := r.RequiredTimes()
	out := make([]float64, len(req))
	for i := range req {
		out[i] = req[i] - r.Arrival[i]
	}
	return out
}
