package sta

import "math"

// RequiredTimes computes, per net ID, the latest time data may arrive on
// the net without violating any downstream endpoint — a backward pass
// mirroring the forward arrival propagation. The per-net slack
// (required - arrival) drives the area-recovery downsizing in synthesis:
// a cell whose output net has generous slack can afford to get slower.
//
// The backward pass reuses the arc delays implied by the forward
// solution (same loads and slews), which is the standard STA required-
// time approximation. Results are memoized — a snapshot is immutable, so
// the first caller pays and every later margin step reads the cache —
// and Engine-produced snapshots serve the arc delays from the engine's
// (load, slew)-validated cache instead of re-interpolating the LUTs.
func (r *Result) RequiredTimes() []float64 {
	r.requireComputed()
	return r.req
}

// NetSlacks returns required - arrival per net ID (positive = margin).
// Nets with no downstream endpoint have +Inf slack.
func (r *Result) NetSlacks() []float64 {
	r.requireComputed()
	return r.slacks
}

func (r *Result) requireComputed() {
	r.reqMu.Lock()
	defer r.reqMu.Unlock()
	if !r.reqDone {
		r.computeRequired()
		r.reqDone = true
	}
}

// grownF64 returns a length-n float64 slice, reusing buf's backing when
// it is large enough — pooled snapshots keep their req/slacks arrays.
func grownF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func (r *Result) computeRequired() {
	req := grownF64(r.req, len(r.Arrival))
	for i := range req {
		req[i] = math.Inf(1)
	}
	defer func() {
		r.req = req
		r.slacks = grownF64(r.slacks, len(req))
		for i := range req {
			r.slacks[i] = req[i] - r.Arrival[i]
		}
	}()
	// Seed endpoints.
	reqBase := r.Cfg.ClockPeriod - r.Cfg.Uncertainty
	for _, ep := range r.Endpoints {
		lim := reqBase
		if ep.IsFF {
			lim -= ep.Inst.Spec.SetupTime(r.nl.Cat.Corner)
		}
		if lim < req[ep.Net.ID] {
			req[ep.Net.ID] = lim
		}
	}
	// Reverse topological order: process instances after all their
	// fanout instances.
	order, err := r.nl.TopoOrder()
	if err != nil {
		return
	}
	for i := len(order) - 1; i >= 0; i-- {
		inst := order[i]
		if inst.Spec.IsSequential() {
			continue
		}
		if r.eng != nil {
			// Engine path: arcs are pre-resolved and delay lookups hit
			// the per-arc cache whenever the forward pass (or an earlier
			// backward pass) already evaluated this operating point. The
			// min-accumulation is order-independent, so iterating
			// spec.Outputs instead of the Out map changes nothing.
			cc := r.eng.cellFor(inst)
			for pi := range cc.pins {
				p := &cc.pins[pi]
				out := p.out
				if out == nil {
					continue
				}
				ro := req[out.ID]
				if math.IsInf(ro, 1) {
					continue
				}
				for ai := range inst.Spec.Inputs {
					inNet := p.ins[ai]
					if inNet == nil {
						continue
					}
					arc := p.cur.arcs[ai]
					if arc == nil {
						continue
					}
					d, _ := p.eval(ai, arc, r.Load[out.ID], r.Slew[inNet.ID])
					if lim := ro - d; lim < req[inNet.ID] {
						req[inNet.ID] = lim
					}
				}
			}
			continue
		}
		for pin, out := range inst.Out {
			ro := req[out.ID]
			if math.IsInf(ro, 1) {
				continue
			}
			for _, in := range inst.Spec.Inputs {
				inNet := inst.In[in]
				if inNet == nil {
					continue
				}
				arc := r.arcOf(inst, pin, in)
				if arc == nil {
					continue
				}
				d, _ := evalArc(arc, r.Load[out.ID], r.Slew[inNet.ID])
				if lim := ro - d; lim < req[inNet.ID] {
					req[inNet.ID] = lim
				}
			}
		}
	}
}
