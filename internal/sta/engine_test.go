package sta

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"stdcelltune/internal/netlist"
	"stdcelltune/internal/stdcell"
)

// randNetlist builds a random layered design: primary inputs and launch
// flops feeding a soup of 1-4 input gates, capped by capture flops and
// primary outputs. Multi-output adder cells are included so the engine's
// per-pin arc slots get exercised.
func randNetlist(tb testing.TB, rng *rand.Rand, nGates int) *netlist.Netlist {
	tb.Helper()
	nl := netlist.New("rand", cat)
	var nets []*netlist.Net
	for i := 0; i < 4; i++ {
		nets = append(nets, nl.AddInput(fmt.Sprintf("pi%d", i)))
	}
	for i := 0; i < 3; i++ {
		ff := nl.AddInstance(fmt.Sprintf("lff%d", i), cat.Spec("DFQ_1"))
		nl.Connect(ff, "D", nets[rng.Intn(len(nets))])
		q := nl.AddNet("")
		nl.Drive(ff, "Q", q)
		nets = append(nets, q)
	}
	gates := []string{"INV_1", "INV_2", "BUF_2", "ND2_1", "ND2_2", "NR2_1", "XNR2_1", "ADDH_1", "MUX2_1"}
	for i := 0; i < nGates; i++ {
		spec := cat.Spec(gates[rng.Intn(len(gates))])
		g := nl.AddInstance(fmt.Sprintf("g%d", i), spec)
		for _, pin := range spec.Inputs {
			nl.Connect(g, pin, nets[rng.Intn(len(nets))])
		}
		for _, pin := range spec.Outputs {
			y := nl.AddNet("")
			nl.Drive(g, pin, y)
			nets = append(nets, y)
		}
	}
	for i := 0; i < 3; i++ {
		ff := nl.AddInstance(fmt.Sprintf("cff%d", i), cat.Spec("DFQ_2"))
		nl.Connect(ff, "D", nets[len(nets)-1-i])
		q := nl.AddNet("")
		nl.Drive(ff, "Q", q)
		nl.MarkOutput(fmt.Sprintf("so%d", i), q)
	}
	nl.MarkOutput("po", nets[len(nets)-4])
	return nl
}

// checkIdentical asserts that an engine snapshot is bit-identical to a
// fresh full analysis: every per-net array, the endpoint list, the
// max-cap violations, and the memoized backward pass.
func checkIdentical(tb testing.TB, step string, got, want *Result) {
	tb.Helper()
	eqF := func(name string, g, w []float64) {
		tb.Helper()
		if len(g) != len(w) {
			tb.Fatalf("%s: %s length %d != %d", step, name, len(g), len(w))
		}
		for i := range g {
			// Bitwise comparison: NaN must match NaN, and no tolerance.
			if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
				tb.Fatalf("%s: %s[%d] = %v != %v", step, name, i, g[i], w[i])
			}
		}
	}
	eqF("Load", got.Load, want.Load)
	eqF("Arrival", got.Arrival, want.Arrival)
	eqF("Slew", got.Slew, want.Slew)
	if len(got.fromPin) != len(want.fromPin) {
		tb.Fatalf("%s: fromPin length %d != %d", step, len(got.fromPin), len(want.fromPin))
	}
	for i := range got.fromPin {
		if got.fromPin[i] != want.fromPin[i] {
			tb.Fatalf("%s: fromPin[%d] = %q != %q", step, i, got.fromPin[i], want.fromPin[i])
		}
	}
	if len(got.Endpoints) != len(want.Endpoints) {
		tb.Fatalf("%s: %d endpoints != %d", step, len(got.Endpoints), len(want.Endpoints))
	}
	for i, g := range got.Endpoints {
		w := want.Endpoints[i]
		if g.Name != w.Name || g.IsFF != w.IsFF || g.Inst != w.Inst || g.Net != w.Net ||
			math.Float64bits(g.Arrival) != math.Float64bits(w.Arrival) ||
			math.Float64bits(g.Slack) != math.Float64bits(w.Slack) {
			tb.Fatalf("%s: endpoint %d %+v != %+v", step, i, g, w)
		}
	}
	if len(got.MaxCapViolations) != len(want.MaxCapViolations) {
		tb.Fatalf("%s: %d max-cap violations != %d", step, len(got.MaxCapViolations), len(want.MaxCapViolations))
	}
	for i := range got.MaxCapViolations {
		if got.MaxCapViolations[i] != want.MaxCapViolations[i] {
			tb.Fatalf("%s: max-cap violation %d differs", step, i)
		}
	}
	eqF("RequiredTimes", got.RequiredTimes(), want.RequiredTimes())
	eqF("NetSlacks", got.NetSlacks(), want.NetSlacks())
}

// applyRandomEdit performs one synthesis-shaped edit: a resize within a
// family, a repeater insertion in front of every sink, or a fanout split
// moving a random subset of sinks behind a buffer.
func applyRandomEdit(tb testing.TB, rng *rand.Rand, nl *netlist.Netlist) string {
	tb.Helper()
	switch rng.Intn(4) {
	case 0, 1: // resize (the dominant move in sizing loops)
		for tries := 0; tries < 20; tries++ {
			inst := nl.Instances[rng.Intn(len(nl.Instances))]
			fam := nl.Cat.Families[inst.Spec.Family]
			if len(fam) < 2 {
				continue
			}
			to := fam[rng.Intn(len(fam))]
			if to == inst.Spec {
				continue
			}
			if err := nl.Resize(inst, to); err != nil {
				tb.Fatal(err)
			}
			return fmt.Sprintf("resize %s %s->%s", inst.Name, inst.Spec.Family, to.Name)
		}
		return "resize (no-op)"
	case 2: // repeater: buffer all sinks of a random net
		for tries := 0; tries < 20; tries++ {
			n := nl.Nets[rng.Intn(len(nl.Nets))]
			if len(n.Sinks) == 0 || n.Driver == nil {
				continue
			}
			sinks := append([]netlist.Sink(nil), n.Sinks...)
			nl.InsertBuffer(n, cat.Spec("BUF_4"), sinks)
			return fmt.Sprintf("repeater on %d", n.ID)
		}
		return "repeater (no-op)"
	default: // fanout split: buffer a strict subset of sinks
		for tries := 0; tries < 20; tries++ {
			n := nl.Nets[rng.Intn(len(nl.Nets))]
			if len(n.Sinks) < 2 || n.Driver == nil {
				continue
			}
			k := 1 + rng.Intn(len(n.Sinks)-1)
			sinks := append([]netlist.Sink(nil), n.Sinks[:k]...)
			nl.InsertBuffer(n, cat.Spec("BUF_2"), sinks)
			return fmt.Sprintf("split %d sinks off %d", k, n.ID)
		}
		return "split (no-op)"
	}
}

// TestEngineMatchesAnalyze drives the incremental engine through random
// edit sequences and demands bit-identity with a fresh full Analyze
// after every single edit — the engine's core contract.
func TestEngineMatchesAnalyze(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nl := randNetlist(t, rng, 40+rng.Intn(40))
			cfg := DefaultConfig(1.0 + rng.Float64())
			e := NewEngine(nl, cfg)
			defer e.Close()
			got, err := e.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			want, err := Analyze(nl, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkIdentical(t, "initial", got, want)
			for step := 0; step < 60; step++ {
				desc := applyRandomEdit(t, rng, nl)
				got, err := e.Analyze()
				if err != nil {
					t.Fatalf("step %d (%s): %v", step, desc, err)
				}
				want, err := Analyze(nl, cfg)
				if err != nil {
					t.Fatalf("step %d (%s): %v", step, desc, err)
				}
				checkIdentical(t, fmt.Sprintf("step %d (%s)", step, desc), got, want)
			}
		})
	}
}

// TestEngineIncrementalPathTaken makes sure the equivalence test above
// actually exercises the incremental path rather than falling back to
// full analyses throughout.
func TestEngineIncrementalPathTaken(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	nl := randNetlist(t, rng, 60)
	cfg := DefaultConfig(2)
	e := NewEngine(nl, cfg)
	defer e.Close()
	// Tiny netlists sit under minFullThreshold; lower the bar by raising
	// FullFrac so single-instance dirt still goes incremental.
	e.FullFrac = 1
	if _, err := e.Analyze(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		inst := nl.Instances[rng.Intn(len(nl.Instances))]
		fam := nl.Cat.Families[inst.Spec.Family]
		if err := nl.Resize(inst, fam[rng.Intn(len(fam))]); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Analyze(); err != nil {
			t.Fatal(err)
		}
	}
	full, inc := e.Counts()
	if full != 1 {
		t.Errorf("full analyses = %d, want exactly the initial one", full)
	}
	if inc == 0 {
		t.Error("no incremental updates despite per-edit analyses")
	}
}

// TestEngineCleanReuse asserts the no-edit fast path returns the same
// snapshot without any new analysis.
func TestEngineCleanReuse(t *testing.T) {
	nl := chain(t)
	e := NewEngine(nl, DefaultConfig(5))
	defer e.Close()
	r1, err := e.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("clean re-analysis should return the cached snapshot")
	}
	full, inc := e.Counts()
	if full != 1 || inc != 0 {
		t.Errorf("counts = (%d, %d), want (1, 0)", full, inc)
	}
}

// TestEngineRewind applies a batch of resizes, reverts them, rewinds,
// and checks the engine continues producing bit-identical snapshots.
func TestEngineRewind(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nl := randNetlist(t, rng, 50)
	cfg := DefaultConfig(2)
	e := NewEngine(nl, cfg)
	defer e.Close()
	base, err := e.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// Resize a few instances, then revert them in reverse order.
	type mv struct {
		inst *netlist.Instance
		from *stdcell.Spec
	}
	var moves []mv
	for i := 0; i < 5; i++ {
		inst := nl.Instances[rng.Intn(len(nl.Instances))]
		fam := nl.Cat.Families[inst.Spec.Family]
		moves = append(moves, mv{inst, inst.Spec})
		if err := nl.Resize(inst, fam[rng.Intn(len(fam))]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Analyze(); err != nil {
		t.Fatal(err)
	}
	for i := len(moves) - 1; i >= 0; i-- {
		if err := nl.Resize(moves[i].inst, moves[i].from); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Rewind(base); err != nil {
		t.Fatal(err)
	}
	got, err := e.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Error("post-rewind Analyze should reuse the rewound snapshot")
	}
	// The engine must keep tracking edits correctly after a rewind.
	inst := nl.Instances[0]
	fam := nl.Cat.Families[inst.Spec.Family]
	if err := nl.Resize(inst, fam[len(fam)-1]); err != nil {
		t.Fatal(err)
	}
	got, err = e.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Analyze(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, "post-rewind edit", got, want)
}

// TestEngineRewindRejectsTopologyEdit: a rewind across an InsertBuffer
// must fail — reverts cannot undo topology edits.
func TestEngineRewindRejectsTopologyEdit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nl := randNetlist(t, rng, 30)
	e := NewEngine(nl, DefaultConfig(2))
	defer e.Close()
	base, err := e.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	var target *netlist.Net
	for _, n := range nl.Nets {
		if n.Driver != nil && len(n.Sinks) > 0 {
			target = n
			break
		}
	}
	nl.InsertBuffer(target, cat.Spec("BUF_2"), append([]netlist.Sink(nil), target.Sinks...))
	if err := e.Rewind(base); err == nil {
		t.Fatal("rewind across a topology edit must fail")
	}
	// A snapshot from a different engine must be rejected too.
	e2 := NewEngine(nl, DefaultConfig(2))
	defer e2.Close()
	r2, err := e2.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Rewind(r2); err == nil {
		t.Fatal("rewind to a foreign snapshot must fail")
	}
}

// TestEngineFullFallback drives the dirty set over the threshold and
// checks the engine switches to full analyses while staying identical.
func TestEngineFullFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nl := randNetlist(t, rng, 50)
	cfg := DefaultConfig(2)
	e := NewEngine(nl, cfg)
	defer e.Close()
	e.FullFrac = 1e-9 // threshold floors at minFullThreshold... so dirty everything
	if _, err := e.Analyze(); err != nil {
		t.Fatal(err)
	}
	for _, inst := range nl.Instances {
		fam := nl.Cat.Families[inst.Spec.Family]
		if err := nl.Resize(inst, fam[len(fam)-1]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := e.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	full, _ := e.Counts()
	if full != 2 {
		t.Errorf("full analyses = %d, want 2 (initial + fallback)", full)
	}
	want, err := Analyze(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, "fallback", got, want)
}

// FuzzEngineEdits feeds arbitrary edit streams to the engine and checks
// bit-identity with a fresh Analyze after each edit.
func FuzzEngineEdits(f *testing.F) {
	f.Add(int64(3), []byte{0, 1, 2, 3, 0, 0, 2})
	f.Add(int64(5), []byte{2, 2, 2, 1, 0})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) > 32 {
			ops = ops[:32]
		}
		rng := rand.New(rand.NewSource(seed))
		nl := randNetlist(t, rng, 25)
		cfg := DefaultConfig(1.5)
		e := NewEngine(nl, cfg)
		defer e.Close()
		if _, err := e.Analyze(); err != nil {
			t.Fatal(err)
		}
		for i, op := range ops {
			opRng := rand.New(rand.NewSource(seed + int64(op)*131 + int64(i)))
			desc := applyRandomEdit(t, opRng, nl)
			got, err := e.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			want, err := Analyze(nl, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkIdentical(t, fmt.Sprintf("op %d (%s)", i, desc), got, want)
		}
	})
}
