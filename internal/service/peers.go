package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"stdcelltune/internal/digest"
	"stdcelltune/internal/obs"
)

// PeerClient fetches verified artifact sets from peer stcd nodes — the
// fleet tier of the artifact cache. On a local miss the cache asks
// each registered peer for the spec digest's full artifact set; every
// blob is re-hashed locally against the peer's declared SHA-256 before
// anything is accepted, so a tampered or torn peer response costs a
// fall-through to recomputation, never wrong bytes. Warm hits thereby
// survive node loss: any node that ever computed a spec can seed the
// rest of the fleet.
type PeerClient struct {
	client *http.Client

	mu    sync.Mutex
	peers []string // base URLs, probe order
}

// NewPeerClient builds a client over the given peer addresses
// (host:port or full URLs; empty entries ignored).
func NewPeerClient(addrs []string) *PeerClient {
	p := &PeerClient{client: &http.Client{Timeout: 10 * time.Second}}
	for _, a := range addrs {
		p.Add(a)
	}
	return p
}

// Add registers a peer (idempotent). Used both for the static -peers
// flag and for nodes that advertise an artifact address when they
// register with the cluster coordinator.
func (p *PeerClient) Add(addr string) {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	addr = strings.TrimRight(addr, "/")
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, have := range p.peers {
		if have == addr {
			return
		}
	}
	p.peers = append(p.peers, addr)
}

// Peers lists the registered peer base URLs.
func (p *PeerClient) Peers() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.peers...)
}

// Fetch implements cache.PeerFetchFunc: probe peers in registration
// order, return the first fully verified artifact set. A peer that
// lacks the digest, answers garbage, or fails even one blob's hash
// check is skipped whole — partial sets are never assembled across
// peers, because the byte-identity contract is per entry, not per
// artifact.
func (p *PeerClient) Fetch(ctx context.Context, dig string) (map[string][]byte, bool) {
	for _, base := range p.Peers() {
		blobs, err := p.fetchFrom(ctx, base, dig)
		if err == nil {
			obs.Log().Debug("peer cache fill", "digest", dig, "peer", base, "artifacts", len(blobs))
			return blobs, true
		}
		if ctx.Err() != nil {
			return nil, false
		}
		obs.Log().Debug("peer fetch failed", "digest", dig, "peer", base, "err", err)
	}
	return nil, false
}

// peerIndex mirrors the GET /v1/artifacts/{digest} response shape.
type peerIndex struct {
	Digest    string         `json:"digest"`
	Artifacts []ArtifactView `json:"artifacts"`
}

func (p *PeerClient) fetchFrom(ctx context.Context, base, dig string) (map[string][]byte, error) {
	var idx peerIndex
	if err := p.getJSON(ctx, base+"/v1/artifacts/"+dig, &idx); err != nil {
		return nil, err
	}
	if idx.Digest != dig {
		return nil, fmt.Errorf("peer served digest %q, asked for %q", idx.Digest, dig)
	}
	if len(idx.Artifacts) == 0 {
		return nil, fmt.Errorf("peer index is empty")
	}
	blobs := make(map[string][]byte, len(idx.Artifacts))
	for _, a := range idx.Artifacts {
		if a.Name == "" || strings.ContainsAny(a.Name, "/\\\x00") {
			return nil, fmt.Errorf("peer index names unsafe artifact %q", a.Name)
		}
		body, err := p.getBytes(ctx, base+"/v1/artifacts/"+dig+"/"+a.Name)
		if err != nil {
			return nil, fmt.Errorf("artifact %s: %w", a.Name, err)
		}
		// The whole point: the peer's declared hash is re-checked over
		// the bytes that actually arrived, exactly as rehydration checks
		// the disk cache.
		if got := digest.Bytes(body); got != a.SHA256 {
			return nil, fmt.Errorf("artifact %s hash mismatch: got %s, peer declared %s", a.Name, got, a.SHA256)
		}
		blobs[a.Name] = body
	}
	return blobs, nil
}

func (p *PeerClient) getJSON(ctx context.Context, url string, out any) error {
	body, err := p.getBytes(ctx, url)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, out)
}

func (p *PeerClient) getBytes(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	res, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		io.Copy(io.Discard, res.Body)
		return nil, fmt.Errorf("%s: %s", url, res.Status)
	}
	return io.ReadAll(res.Body)
}
