package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stdcelltune"
	"stdcelltune/internal/obs"
	"stdcelltune/internal/service/cache"
)

func newTestManager(t *testing.T, opts ManagerOptions) *Manager {
	t.Helper()
	store, err := cache.New("")
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(store, opts)
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
}

func fakeBlobs(spec Spec) map[string][]byte {
	return map[string][]byte{"result.json": []byte(fmt.Sprintf("{%q}\n", spec.Digest()))}
}

func TestJobLifecycle(t *testing.T) {
	m := newTestManager(t, ManagerOptions{
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) { return fakeBlobs(s), nil },
	})
	j, err := m.Submit(Spec{Design: "mcu-small", Instances: 3}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	v := j.View()
	if v.Status != StatusDone || v.Outcome != "miss" {
		t.Fatalf("status %s outcome %q, want done/miss", v.Status, v.Outcome)
	}
	if v.Schema != SchemaJob || v.Digest != j.Spec.Digest() {
		t.Fatalf("view schema %q digest %q", v.Schema, v.Digest)
	}
	if len(v.Artifacts) != 1 || v.Artifacts[0].Name != "result.json" {
		t.Fatalf("artifacts %+v", v.Artifacts)
	}
	if v.Started == nil || v.Finished == nil {
		t.Fatal("timestamps missing on terminal job")
	}
}

// TestDuplicateJobsSingleFlight is the daemon half of the cache
// acceptance story: concurrent identical submissions compute once, and
// a later identical submission is a counted cache hit.
func TestDuplicateJobsSingleFlight(t *testing.T) {
	var computes atomic.Int64
	release := make(chan struct{})
	m := newTestManager(t, ManagerOptions{
		Workers: 4,
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) {
			computes.Add(1)
			<-release
			return fakeBlobs(s), nil
		},
	})
	spec := Spec{Design: "mcu-small", Instances: 4}
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := m.Submit(spec, "")
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// Release once at least one worker reached the compute; the others
	// either share its flight or land as cache hits after it seals.
	for computes.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	for _, j := range jobs {
		waitDone(t, j)
	}
	if got := computes.Load(); got != 1 {
		t.Fatalf("pipeline ran %d times for 4 identical jobs, want 1", got)
	}
	misses := 0
	for _, j := range jobs {
		v := j.View()
		if v.Status != StatusDone {
			t.Fatalf("job %s status %s: %s", j.ID, v.Status, v.Error)
		}
		if v.Outcome == "miss" {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d misses across duplicates, want 1", misses)
	}
	hitsBefore := obs.Default().Counter("service.cache_hits").Value()
	j, err := m.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if v := j.View(); v.Outcome != "hit" {
		t.Fatalf("warm job outcome %q, want hit", v.Outcome)
	}
	if got := obs.Default().Counter("service.cache_hits").Value(); got != hitsBefore+1 {
		t.Fatalf("cache-hit counter %d -> %d, want +1", hitsBefore, got)
	}
}

func TestSubmitValidates(t *testing.T) {
	m := newTestManager(t, ManagerOptions{
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) { return fakeBlobs(s), nil },
	})
	if _, err := m.Submit(Spec{Corner: "nominal"}, ""); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("want ErrBadSpec, got %v", err)
	}
}

func TestDrainRejectsAndFinishes(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var startOnce sync.Once
	m := newTestManager(t, ManagerOptions{
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) {
			startOnce.Do(func() { close(started) })
			<-release
			return fakeBlobs(s), nil
		},
	})
	j, err := m.Submit(Spec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	<-started
	drained := make(chan error, 1)
	go func() { drained <- m.Drain(context.Background()) }()
	// Submissions during the drain are refused with the 503 sentinel.
	for {
		_, err := m.Submit(Spec{Seed: 2}, "")
		if errors.Is(err, ErrDraining) {
			break
		}
		if err != nil {
			t.Fatalf("unexpected submit error during drain: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitDone(t, j)
	if v := j.View(); v.Status != StatusDone {
		t.Fatalf("in-flight job after drain: %s (%s)", v.Status, v.Error)
	}
}

// TestDrainDeadlineCancelsStragglers proves the drain-deadline path
// without wall-clock timing: the job signals when it is running, the
// test then expires the drain context deterministically, and the
// straggler must come back cancelled.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	started := make(chan struct{})
	m := newTestManager(t, ManagerOptions{
		Run: func(ctx context.Context, s Spec) (map[string][]byte, error) {
			close(started)
			<-ctx.Done() // a job that only ends by cancellation
			return nil, ctx.Err()
		},
	})
	j, err := m.Submit(Spec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	<-started // the straggler is definitely in flight before the drain begins
	ctx, cancel := context.WithCancel(context.Background())
	drained := make(chan error, 1)
	go func() { drained <- m.Drain(ctx) }()
	cancel() // the deterministic "deadline": expire the drain context now
	if err := <-drained; !errors.Is(err, context.Canceled) {
		t.Fatalf("drain: %v, want context.Canceled", err)
	}
	waitDone(t, j)
	if v := j.View(); v.Status != StatusCancelled {
		t.Fatalf("straggler status %s, want cancelled", v.Status)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	m := newTestManager(t, ManagerOptions{
		Run: func(ctx context.Context, s Spec) (map[string][]byte, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	j, err := m.Submit(Spec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j.Cancel()
	waitDone(t, j)
	v := j.View()
	if v.Status != StatusCancelled {
		t.Fatalf("status %s, want cancelled", v.Status)
	}
	if v.HTTPCode != StatusClientClosedRequest {
		t.Fatalf("error_status %d, want 499", v.HTTPCode)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m := newTestManager(t, ManagerOptions{
		Workers: 1,
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) {
			<-release
			return fakeBlobs(s), nil
		},
	})
	// Occupy the single worker, then cancel a job stuck in the queue.
	if _, err := m.Submit(Spec{}, ""); err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(Spec{Seed: 2}, "")
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	waitDone(t, queued)
	if v := queued.View(); v.Status != StatusCancelled {
		t.Fatalf("queued-cancel status %s", v.Status)
	}
}

// TestJobEvents: in Trace mode the pipeline's spans reach subscribers
// live and replay after the fact.
func TestJobEvents(t *testing.T) {
	m := newTestManager(t, ManagerOptions{
		Trace: true,
		Run: func(ctx context.Context, s Spec) (map[string][]byte, error) {
			tr := obs.TracerFrom(ctx)
			tr.Start("stage-one", "service").End()
			tr.Start("stage-two", "service").End()
			return fakeBlobs(s), nil
		},
	})
	j, err := m.Submit(Spec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	replay, ch, unsub := j.Subscribe()
	defer unsub()
	if len(replay) != 3 || replay[0].Name != "stage-one" || replay[1].Name != "stage-two" || replay[2].Name != "job" {
		t.Fatalf("replay %+v, want stage-one,stage-two,job", replay)
	}
	if replay[2].Args["job"] != j.ID {
		t.Fatalf("root span args %v missing job id", replay[2].Args)
	}
	if _, open := <-ch; open {
		t.Fatal("terminal job's event channel not closed")
	}
}

// TestErrorStatusMapping pins the errors.Is -> HTTP table. These codes
// are API surface: clients branch on them, so the mapping is a contract.
func TestErrorStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 200},
		{fmt.Errorf("%w: corner", ErrBadSpec), 400},
		{ErrDraining, 503},
		{ErrQueueFull, 503},
		{withRetryAfter(ErrRateLimited, time.Second), 429},
		{fmt.Errorf("%w (tenant %q)", ErrTenantQuota, "t1"), 429},
		{withRetryAfter(fmt.Errorf("%w sha256:feed", ErrCircuitOpen), time.Second), 503},
		{fmt.Errorf("tune: %w", stdcelltune.ErrWindowInfeasible), 409},
		{fmt.Errorf("characterize: %w", stdcelltune.ErrQuarantined), 422},
		{fmt.Errorf("synthesize: %w", stdcelltune.ErrCancelled), 499},
		{context.Canceled, 499},
		{context.DeadlineExceeded, 499},
		{errors.New("disk on fire"), 500},
	}
	for _, c := range cases {
		if got := HTTPStatus(c.err); got != c.want {
			t.Errorf("HTTPStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
	// Failed jobs carry the mapped status in their view.
	m := newTestManager(t, ManagerOptions{
		Run: func(context.Context, Spec) (map[string][]byte, error) {
			return nil, fmt.Errorf("tune: %w", stdcelltune.ErrWindowInfeasible)
		},
	})
	j, err := m.Submit(Spec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	v := j.View()
	if v.Status != StatusFailed || v.HTTPCode != 409 {
		t.Fatalf("failed job: status %s code %d, want failed/409", v.Status, v.HTTPCode)
	}
}
