// Package cache is the content-addressed artifact store behind the
// tuning service: results of the paper pipeline keyed by the canonical
// digest of the request spec that produced them (see internal/digest).
//
// Two properties carry the daemon's latency story:
//
//   - Content addressing. An entry's key is a pure function of the
//     request spec, and every stored artifact carries its own SHA-256,
//     so a warm hit returns the exact bytes of the original cold run —
//     byte-identical responses are a cache invariant, not an
//     aspiration.
//   - Single-flight deduplication. Concurrent requests for the same
//     digest share one computation: the first caller computes (on the
//     robust pool, via the pipeline), every concurrent caller blocks on
//     the same in-flight slot, and nobody recomputes.
//
// The store is in-memory first with optional directory persistence, so
// a daemon restart can rehydrate its cache from disk.
package cache

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"stdcelltune/internal/digest"
	"stdcelltune/internal/obs"
	"stdcelltune/internal/service/chaos"
)

// Cache metrics, recorded into the process-default obs registry: the
// daemon's debug surface and the run manifest pick them up from there.
var (
	cacheHits   = obs.Default().Counter("service.cache_hits")
	cacheMisses = obs.Default().Counter("service.cache_misses")
	cacheShared = obs.Default().Counter("service.cache_shared") // waiters that attached to an in-flight computation

	// corruptDropped counts persisted entries rehydration refused to
	// serve — missing/bad index, unreadable blob, or content-hash
	// mismatch. Nonzero after a restart means the cache directory took
	// damage; the entries cost a recomputation each, never wrong bytes.
	corruptDropped = obs.Default().Counter("cache.corrupt_dropped")

	// Peer-tier outcomes: a "peer" hit filled a local miss from another
	// node's cache instead of recomputing; a peer miss fell through to
	// the local compute. The ratio gauge is what the fleet dashboards
	// watch — how often identical specs dedup across nodes.
	peerHits   = obs.Default().Counter("cache.peer_hits")
	peerMisses = obs.Default().Counter("cache.peer_misses")
)

func init() {
	obs.Default().GaugeFunc("cache.peer_hit_ratio", func() float64 {
		h, m := float64(peerHits.Value()), float64(peerMisses.Value())
		if h+m == 0 {
			return 0
		}
		return h / (h + m)
	})
}

// Artifact is one stored blob: a named output of the pipeline plus its
// content hash.
type Artifact struct {
	Name   string `json:"name"`
	SHA256 string `json:"sha256"`
	Size   int    `json:"size_bytes"`

	data []byte
}

// Bytes returns the artifact body. Callers must not mutate it.
func (a *Artifact) Bytes() []byte { return a.data }

// Entry is the full artifact set of one request digest.
type Entry struct {
	Digest    string
	Artifacts []*Artifact // sorted by name
}

// Artifact returns the named artifact, or nil.
func (e *Entry) Artifact(name string) *Artifact {
	for _, a := range e.Artifacts {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// PeerFetchFunc asks the fleet's registered peers for the full
// artifact set of a digest. It returns ok=false when no peer has it or
// every fetched copy failed verification; the implementation (the
// service's peer client) must verify each blob against the peer's
// declared SHA-256 before returning it, so the cache only ever seals
// bytes whose content hash was checked end to end.
type PeerFetchFunc func(ctx context.Context, dig string) (map[string][]byte, bool)

// Store is the content-addressed artifact store. Safe for concurrent
// use.
type Store struct {
	dir string // "" = memory only

	mu       sync.Mutex
	entries  map[string]*Entry
	inflight map[string]*flight
	peers    PeerFetchFunc
}

// SetPeerFetch installs the peer tier: on a local miss, GetOrCompute
// consults f before computing. The single-flight slot covers the peer
// fetch too, so concurrent requests for one digest make one peer round
// trip at most.
func (s *Store) SetPeerFetch(f PeerFetchFunc) {
	s.mu.Lock()
	s.peers = f
	s.mu.Unlock()
}

// New creates a store. A non-empty dir enables persistence: entries are
// written under dir/<digest-hex>/ and existing entries are rehydrated
// immediately.
func New(dir string) (*Store, error) {
	s := &Store{dir: dir, entries: make(map[string]*Entry), inflight: make(map[string]*flight)}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		if err := s.load(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Len returns the number of cached entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Lookup returns the cached entry for a digest without computing,
// recording a hit when present. It does not wait for in-flight
// computations.
func (s *Store) Lookup(dig string) (*Entry, bool) {
	s.mu.Lock()
	e, ok := s.entries[dig]
	s.mu.Unlock()
	if ok {
		cacheHits.Add(1)
	}
	return e, ok
}

// Peek returns the cached entry for a digest without recording a
// cache-hit metric — for listings and existence checks that should not
// skew the hit-ratio the dashboards watch.
func (s *Store) Peek(dig string) (*Entry, bool) {
	s.mu.Lock()
	e, ok := s.entries[dig]
	s.mu.Unlock()
	return e, ok
}

// GetOrCompute returns the entry for dig, computing it at most once
// across all concurrent callers. The outcome string is "hit" (entry was
// already cached), "peer" (a registered peer supplied verified bytes),
// "miss" (this call computed it), or "shared" (another in-flight call
// computed it while we waited).
//
// compute runs under the first caller's context; a waiter whose own ctx
// is cancelled stops waiting and returns its context error (the
// computation itself continues for the benefit of the other callers).
func (s *Store) GetOrCompute(ctx context.Context, dig string, compute func(context.Context) (map[string][]byte, error)) (*Entry, string, error) {
	s.mu.Lock()
	if e, ok := s.entries[dig]; ok {
		s.mu.Unlock()
		cacheHits.Add(1)
		return e, "hit", nil
	}
	if fl, ok := s.inflight[dig]; ok {
		s.mu.Unlock()
		cacheShared.Add(1)
		select {
		case <-fl.done:
			return fl.entry, "shared", fl.err
		case <-ctx.Done():
			return nil, "shared", ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	s.inflight[dig] = fl
	peers := s.peers
	s.mu.Unlock()

	outcome := "miss"
	var entry *Entry
	var err error
	if peers != nil {
		if fetched, ok := peers(ctx, dig); ok {
			if e, serr := s.seal(dig, fetched); serr == nil {
				entry, outcome = e, "peer"
				peerHits.Add(1)
			} else {
				// A peer copy that fails to seal (bad name, persistence
				// error) falls through to the local compute — a broken
				// peer must cost latency, never correctness.
				obs.Log().Warn("cache: peer entry rejected", "digest", dig, "err", serr)
				peerMisses.Add(1)
			}
		} else {
			peerMisses.Add(1)
		}
	}
	if entry == nil {
		cacheMisses.Add(1)
		var blobs map[string][]byte
		blobs, err = compute(ctx)
		if err == nil {
			entry, err = s.seal(dig, blobs)
		}
	}
	fl.entry, fl.err = entry, err

	s.mu.Lock()
	if err == nil {
		s.entries[dig] = entry
	}
	delete(s.inflight, dig)
	s.mu.Unlock()
	close(fl.done)
	return entry, outcome, err
}

// Put stores a computed artifact set directly (the rehydration and test
// entry point). Existing entries for the digest are replaced.
func (s *Store) Put(dig string, blobs map[string][]byte) (*Entry, error) {
	e, err := s.seal(dig, blobs)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.entries[dig] = e
	s.mu.Unlock()
	return e, nil
}

// seal freezes a blob map into an Entry (sorted, content-hashed) and
// persists it when a directory is configured.
func (s *Store) seal(dig string, blobs map[string][]byte) (*Entry, error) {
	if len(blobs) == 0 {
		return nil, fmt.Errorf("cache: empty artifact set for %s", dig)
	}
	e := &Entry{Digest: dig}
	names := make([]string, 0, len(blobs))
	for name := range blobs {
		if !validName(name) {
			return nil, fmt.Errorf("cache: invalid artifact name %q", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		data := blobs[name]
		e.Artifacts = append(e.Artifacts, &Artifact{
			Name: name, SHA256: digest.Bytes(data), Size: len(data), data: data,
		})
	}
	if s.dir != "" {
		if err := s.persist(e); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// validName keeps artifact names path-safe for both persistence and the
// HTTP surface: a single flat component, no separators or dot-dot.
func validName(name string) bool {
	if name == "" || name == "." || name == ".." {
		return false
	}
	return !strings.ContainsAny(name, "/\\\x00")
}

// entryDirName maps a spec digest ("sha256:<hex>") to a directory name.
func entryDirName(dig string) string {
	return strings.ReplaceAll(dig, ":", "_")
}

// index is the persisted entry manifest (dir/<digest>/index.json).
type index struct {
	Digest    string      `json:"digest"`
	Artifacts []*Artifact `json:"artifacts"`
}

// persist writes an entry's blobs and index to a temp directory and
// renames it into place — the commit point. The chaos points
// "cache.persist.pre-write", "cache.persist.write" (between blobs) and
// "cache.persist.pre-rename" instrument the moments a crash can leave a
// partial .tmp directory, which load ignores by construction.
func (s *Store) persist(e *Entry) error {
	if d := chaos.At("cache.persist.pre-write"); d.Crash {
		return chaos.ErrCrash
	} else if d.Err != nil {
		return d.Err
	}
	dir := filepath.Join(s.dir, entryDirName(e.Digest))
	tmp := dir + ".tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return err
	}
	for _, a := range e.Artifacts {
		if err := os.WriteFile(filepath.Join(tmp, a.Name), a.data, 0o644); err != nil {
			return err
		}
		if d := chaos.At("cache.persist.write"); d.Crash {
			return chaos.ErrCrash // crash mid-artifact-write: .tmp left behind, invisible to load
		} else if d.Err != nil {
			return d.Err
		}
	}
	idx, err := json.MarshalIndent(index{Digest: e.Digest, Artifacts: e.Artifacts}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(tmp, "index.json"), append(idx, '\n'), 0o644); err != nil {
		return err
	}
	if d := chaos.At("cache.persist.pre-rename"); d.Crash {
		return chaos.ErrCrash
	}
	// Rename-into-place makes a crashed write invisible to load.
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	return os.Rename(tmp, dir)
}

// load rehydrates every persisted entry. A directory whose index or
// blobs are unreadable or whose content hash no longer matches is
// skipped (and logged), never fatal: a corrupt cache entry costs a
// recomputation, not the daemon.
func (s *Store) load() error {
	dirs, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	log := obs.Log()
	for _, d := range dirs {
		if !d.IsDir() || strings.HasSuffix(d.Name(), ".tmp") {
			continue
		}
		dir := filepath.Join(s.dir, d.Name())
		data, err := os.ReadFile(filepath.Join(dir, "index.json"))
		if err != nil {
			corruptDropped.Add(1)
			log.Warn("cache: skipping entry without index", "dir", dir, "err", err)
			continue
		}
		var idx index
		if err := json.Unmarshal(data, &idx); err != nil {
			corruptDropped.Add(1)
			log.Warn("cache: skipping entry with bad index", "dir", dir, "err", err)
			continue
		}
		e := &Entry{Digest: idx.Digest}
		ok := idx.Digest != ""
		for _, a := range idx.Artifacts {
			if !validName(a.Name) {
				ok = false
				break
			}
			body, err := os.ReadFile(filepath.Join(dir, a.Name))
			if err != nil || digest.Bytes(body) != a.SHA256 {
				ok = false
				break
			}
			e.Artifacts = append(e.Artifacts, &Artifact{Name: a.Name, SHA256: a.SHA256, Size: len(body), data: body})
		}
		if !ok || len(e.Artifacts) == 0 {
			corruptDropped.Add(1)
			log.Warn("cache: skipping corrupt entry", "dir", dir)
			continue
		}
		s.entries[e.Digest] = e
	}
	return nil
}

// Digests lists the cached digests, sorted.
func (s *Store) Digests() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for d := range s.entries {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
