package cache

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"stdcelltune/internal/obs"
)

func blobs(v string) map[string][]byte {
	return map[string][]byte{"a.json": []byte(v), "b.lib": []byte(v + v)}
}

func TestGetOrComputeSingleFlight(t *testing.T) {
	s, err := New("")
	if err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func(context.Context) (map[string][]byte, error) {
		if computes.Add(1) == 1 {
			close(started)
		}
		<-release
		return blobs("x"), nil
	}
	const callers = 8
	outcomes := make([]string, callers)
	entries := make([]*Entry, callers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			e, outcome, err := s.GetOrCompute(context.Background(), "sha256:d1", compute)
			if err != nil {
				t.Error(err)
			}
			entries[i], outcomes[i] = e, outcome
		}(i)
	}
	close(start)
	// Wait until the one compute is running, then release it. Scheduling
	// decides how many callers attach while the flight is open ("shared")
	// versus arrive after it sealed ("hit") — the hard invariant is that
	// exactly one computed.
	<-started
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	misses := 0
	for i, o := range outcomes {
		switch o {
		case "miss":
			misses++
		case "shared", "hit":
		default:
			t.Errorf("caller %d outcome %q", i, o)
		}
		if entries[i] == nil || entries[i].Artifact("a.json") == nil {
			t.Fatalf("caller %d got no entry", i)
		}
		// All callers must see the same sealed entry.
		if entries[i] != entries[0] {
			t.Errorf("caller %d got a different entry", i)
		}
	}
	if misses != 1 {
		t.Fatalf("outcomes %v: %d misses, want exactly 1", outcomes, misses)
	}
	// A later call is a pure hit.
	hitsBefore := obs.Default().Counter("service.cache_hits").Value()
	_, outcome, err := s.GetOrCompute(context.Background(), "sha256:d1", compute)
	if err != nil || outcome != "hit" {
		t.Fatalf("warm call: outcome %q err %v", outcome, err)
	}
	if got := obs.Default().Counter("service.cache_hits").Value(); got != hitsBefore+1 {
		t.Fatalf("hit counter did not increment: %d -> %d", hitsBefore, got)
	}
}

// TestSharedOutcome pins the single-flight attach path deterministically:
// a second caller that arrives while the first compute is blocked reports
// "shared" and returns the first caller's entry.
func TestSharedOutcome(t *testing.T) {
	s, _ := New("")
	started := make(chan struct{})
	release := make(chan struct{})
	first := make(chan *Entry, 1)
	go func() {
		e, _, _ := s.GetOrCompute(context.Background(), "sha256:sh", func(context.Context) (map[string][]byte, error) {
			close(started)
			<-release
			return blobs("once"), nil
		})
		first <- e
	}()
	<-started
	type res struct {
		e       *Entry
		outcome string
	}
	// The waiter increments the shared counter before blocking on the
	// flight, so the counter is the handshake that it attached.
	shared := obs.Default().Counter("service.cache_shared")
	base := shared.Value()
	second := make(chan res, 1)
	go func() {
		e, outcome, _ := s.GetOrCompute(context.Background(), "sha256:sh", nil)
		second <- res{e, outcome}
	}()
	for shared.Value() == base {
		runtime.Gosched()
	}
	close(release)
	got := <-second
	if got.outcome != "shared" {
		t.Fatalf("second caller outcome %q, want shared", got.outcome)
	}
	if e := <-first; got.e != e {
		t.Fatal("shared caller got a different entry than the computing caller")
	}
}

func TestComputeErrorNotCached(t *testing.T) {
	s, _ := New("")
	boom := errors.New("boom")
	_, outcome, err := s.GetOrCompute(context.Background(), "sha256:e", func(context.Context) (map[string][]byte, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) || outcome != "miss" {
		t.Fatalf("got %q/%v", outcome, err)
	}
	// The failure must not poison the key: the next call recomputes.
	e, outcome, err := s.GetOrCompute(context.Background(), "sha256:e", func(context.Context) (map[string][]byte, error) {
		return blobs("ok"), nil
	})
	if err != nil || outcome != "miss" || e == nil {
		t.Fatalf("retry after error: %q %v", outcome, err)
	}
}

func TestContentAddressing(t *testing.T) {
	s, _ := New("")
	e, err := s.Put("sha256:d2", blobs("hello"))
	if err != nil {
		t.Fatal(err)
	}
	a := e.Artifact("a.json")
	if a == nil || a.Size != 5 {
		t.Fatalf("artifact missing or wrong size: %+v", a)
	}
	if len(a.SHA256) != 64 {
		t.Fatalf("sha256 %q", a.SHA256)
	}
	if e.Artifact("b.lib").SHA256 == a.SHA256 {
		t.Fatal("different content hashed identically")
	}
	// Names are sorted for deterministic manifests.
	if e.Artifacts[0].Name != "a.json" || e.Artifacts[1].Name != "b.lib" {
		t.Fatalf("artifacts not sorted: %v, %v", e.Artifacts[0].Name, e.Artifacts[1].Name)
	}
}

func TestInvalidArtifactName(t *testing.T) {
	s, _ := New("")
	for _, name := range []string{"", ".", "..", "a/b", `a\b`} {
		if _, err := s.Put("sha256:d3", map[string][]byte{name: []byte("x")}); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Put("sha256:abc", blobs("persisted"))
	if err != nil {
		t.Fatal(err)
	}
	// A corrupt sibling entry must be skipped on reload, not fatal.
	bad := filepath.Join(dir, "sha256_bad")
	os.MkdirAll(bad, 0o755)
	os.WriteFile(filepath.Join(bad, "index.json"), []byte("{not json"), 0o644)

	s2, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("rehydrated %d entries, want 1 (corrupt one skipped)", s2.Len())
	}
	got, ok := s2.Lookup("sha256:abc")
	if !ok {
		t.Fatal("persisted entry not found after reload")
	}
	for i, a := range want.Artifacts {
		b := got.Artifacts[i]
		if a.Name != b.Name || a.SHA256 != b.SHA256 || string(a.Bytes()) != string(b.Bytes()) {
			t.Fatalf("artifact %s changed across restart", a.Name)
		}
	}
	// Tampering with a blob invalidates the whole entry on reload.
	os.WriteFile(filepath.Join(dir, "sha256_abc", "a.json"), []byte("tampered"), 0o644)
	s3, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s3.Lookup("sha256:abc"); ok {
		t.Fatal("tampered entry survived content verification")
	}
}

func TestWaiterCancellation(t *testing.T) {
	s, _ := New("")
	started := make(chan struct{})
	release := make(chan struct{})
	go s.GetOrCompute(context.Background(), "sha256:w", func(context.Context) (map[string][]byte, error) {
		close(started)
		<-release
		return blobs("late"), nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := s.GetOrCompute(ctx, "sha256:w", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}
	close(release)
}

// TestCorruptEntryDroppedAndCounted: entries whose on-disk bytes rot are
// silently skipped at load — but never silently for the operator: each
// drop increments cache.corrupt_dropped and the healthy entries survive.
func TestCorruptEntryDroppedAndCounted(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("sha256:good", blobs("keep")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("sha256:rot", blobs("rot")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("sha256:noindex", blobs("gone")); err != nil {
		t.Fatal(err)
	}

	// Corrupt one blob (hash mismatch) and delete another entry's index.
	rotBlob := filepath.Join(dir, entryDirName("sha256:rot"), "a.json")
	if err := os.WriteFile(rotBlob, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, entryDirName("sha256:noindex"), "index.json")); err != nil {
		t.Fatal(err)
	}

	before := obs.Default().Counter("cache.corrupt_dropped").Value()
	s2, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.Default().Counter("cache.corrupt_dropped").Value(); got != before+2 {
		t.Fatalf("corrupt_dropped %d -> %d, want +2", before, got)
	}
	if _, ok := s2.Lookup("sha256:rot"); ok {
		t.Fatal("tampered entry served from cache")
	}
	if _, ok := s2.Lookup("sha256:noindex"); ok {
		t.Fatal("index-less entry served from cache")
	}
	e, ok := s2.Lookup("sha256:good")
	if !ok {
		t.Fatal("healthy entry lost while dropping corrupt neighbors")
	}
	if string(e.Artifact("a.json").Bytes()) != "keep" {
		t.Fatal("healthy entry's bytes changed")
	}
}
