package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"stdcelltune/internal/digest"
	"stdcelltune/internal/service/cache"
	"stdcelltune/internal/service/shard"
)

// clusterSpec is the scaled-down request the cluster round trip uses:
// enough instances for multiple shards at ShardSize 2.
var clusterSpec = Spec{
	Design: "mcu-small", Instances: 5, Seed: 1,
	Method: "sigma-ceiling", Bound: 0.02, ClockNS: 6,
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterEndToEnd drives the whole tentpole in-process: a
// coordinator-hosting daemon, a real worker polling its HTTP cluster
// routes, a submitted job whose characterize stage distributes as
// shards, and the retained shard set queryable afterwards.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full cluster pipeline over HTTP")
	}
	coord := shard.New(shard.Options{LeaseTTL: 5 * time.Second})
	p := &Pipeline{Cluster: coord, ShardSize: 2}
	store, _ := cache.New("")
	m := NewManager(store, ManagerOptions{Run: p.Run, Cluster: coord, Trace: true})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, name := range []string{"w1", "w2"} {
		w := &shard.Worker{Base: ts.URL, Name: name, Poll: 2 * time.Millisecond}
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }()
	}
	defer wg.Wait()
	defer cancel()
	waitUntil(t, "workers registered", func() bool { return coord.Workers() == 2 })

	v := postJob(t, ts, clusterSpec)
	done := awaitJob(t, ts, m, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("cluster job failed: %s (%d)", done.Error, done.HTTPCode)
	}
	if done.Outcome != "miss" {
		t.Fatalf("cold cluster outcome %q, want miss", done.Outcome)
	}
	if len(done.Artifacts) == 0 {
		t.Fatal("cluster job produced no artifacts")
	}

	// The shard queue actually did the characterize work: ceil(5/2)=3
	// tasks enqueued and completed, none lost.
	st := coord.Stats()
	if st.Enqueued != 3 || st.Completed != 3 {
		t.Fatalf("coordinator stats: enqueued=%d completed=%d, want 3/3", st.Enqueued, st.Completed)
	}
	if st.QueueDepth != 0 || st.Leased != 0 {
		t.Fatalf("queue not drained: depth=%d leased=%d", st.QueueDepth, st.Leased)
	}

	// Same set of artifact names as the single-node pipeline, and the
	// normalized spec document is byte-identical (determinism of the
	// spec layer is mode-independent).
	direct, err := Run(context.Background(), clusterSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(done.Artifacts) != len(direct) {
		t.Fatalf("cluster job lists %d artifacts, single-node produced %d", len(done.Artifacts), len(direct))
	}
	got := getBytes(t, ts.URL+"/v1/artifacts/"+done.Digest+"/"+ArtifactSpec)
	if !bytes.Equal(got, direct[ArtifactSpec]) {
		t.Fatalf("%s differs between cluster and single-node runs", ArtifactSpec)
	}

	// The retained shard set is served over HTTP for obscheck -shard.
	var set shard.ShardSet
	if err := json.Unmarshal(getBytes(t, ts.URL+"/v1/cluster/shards/"+done.Digest), &set); err != nil {
		t.Fatal(err)
	}
	if set.Instances != 5 || len(set.Shards) != 3 {
		t.Fatalf("retained shard set: instances=%d shards=%d, want 5/3", set.Instances, len(set.Shards))
	}

	// Cluster state shows up on the operational surfaces.
	var stats shard.Stats
	if err := json.Unmarshal(getBytes(t, ts.URL+"/v1/cluster"), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 3 {
		t.Fatalf("GET /v1/cluster completed=%d, want 3", stats.Completed)
	}
	var health map[string]any
	if err := json.Unmarshal(getBytes(t, ts.URL+"/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	if _, ok := health["cluster"]; !ok {
		t.Fatal("healthz on a coordinator lacks the cluster section")
	}

	// A sharded re-run of the same spec is a cache hit — the cluster sits
	// behind the content-addressed tier, not beside it.
	again := postJob(t, ts, clusterSpec)
	if doc := awaitJob(t, ts, m, again.ID); doc.Outcome != "hit" {
		t.Fatalf("warm cluster outcome %q, want hit", doc.Outcome)
	}
}

// TestClusterFallbackLocal: when the fleet dies mid-wait (registered
// node goes silent past the liveness window), the characterize stage
// falls back to local computation and the job still succeeds — with
// bytes identical to the plain single-node pipeline, because the local
// fallback is the byte-identity path.
func TestClusterFallbackLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	clock := struct {
		mu sync.Mutex
		t  time.Time
	}{t: time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC)}
	now := func() time.Time {
		clock.mu.Lock()
		defer clock.mu.Unlock()
		return clock.t
	}
	coord := shard.New(shard.Options{LeaseTTL: 100 * time.Millisecond, Now: now})
	coord.Register("ghost", "") // live at t0, never polls again

	p := &Pipeline{Cluster: coord, ShardSize: 2}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		// Once the characterize tasks are queued, jump the fake clock past
		// the liveness window: the ghost node is declared dead and the
		// group fails with ErrNoWorkers.
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if coord.Stats().QueueDepth > 0 {
				clock.mu.Lock()
				clock.t = clock.t.Add(time.Minute)
				clock.mu.Unlock()
				return
			}
		}
	}()

	got, err := p.Run(context.Background(), clusterSpec)
	if err != nil {
		t.Fatalf("fallback run failed: %v", err)
	}
	want, err := Run(context.Background(), clusterSpec)
	if err != nil {
		t.Fatal(err)
	}
	for name, wb := range want {
		if !bytes.Equal(got[name], wb) {
			t.Errorf("fallback artifact %s differs from single-node run", name)
		}
	}
	if st := coord.Stats(); st.QueueDepth != 0 {
		t.Fatalf("failed group left %d tasks queued", st.QueueDepth)
	}
}

// TestCachePeerTier: a local miss fills from a peer's verified artifact
// set (outcome "peer", compute never invoked); a peer serving corrupt
// bytes is rejected whole and the store computes locally instead.
func TestCachePeerTier(t *testing.T) {
	blobs := map[string][]byte{
		"spec.json":   []byte(`{"x":1}` + "\n"),
		"statlib.lib": []byte("library (x) {}\n"),
	}
	const dig = "sha256:feedface"

	// Node A has the entry and serves the real artifact routes.
	storeA, _ := cache.New("")
	if _, err := storeA.Put(dig, blobs); err != nil {
		t.Fatal(err)
	}
	mA := NewManager(storeA, ManagerOptions{})
	tsA := httptest.NewServer(Handler(mA))
	defer tsA.Close()

	// Node B misses locally and fills from A without computing.
	storeB, _ := cache.New("")
	storeB.SetPeerFetch(NewPeerClient([]string{tsA.URL}).Fetch)
	entry, outcome, err := storeB.GetOrCompute(context.Background(), dig,
		func(context.Context) (map[string][]byte, error) {
			t.Error("compute ran despite a peer having the entry")
			return blobs, nil
		})
	if err != nil || outcome != "peer" {
		t.Fatalf("peer fill: outcome=%q err=%v, want peer/nil", outcome, err)
	}
	for name, want := range blobs {
		a := entry.Artifact(name)
		if a == nil || !bytes.Equal(a.Bytes(), want) {
			t.Fatalf("peer-filled artifact %s missing or differs", name)
		}
	}
	// The fill is sealed: a second request is a plain local hit.
	if _, outcome, _ := storeB.GetOrCompute(context.Background(), dig, nil); outcome != "hit" {
		t.Fatalf("second read outcome %q, want hit", outcome)
	}

	// A peer whose blobs do not match their declared hashes is rejected
	// whole; the store falls through to the local compute.
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/artifacts/" + dig:
			fmt.Fprintf(w, `{"digest":%q,"artifacts":[{"name":"spec.json","sha256":%q,"size_bytes":8}]}`,
				dig, digest.Bytes(blobs["spec.json"]))
		default:
			w.Write([]byte("tampered bytes"))
		}
	}))
	defer evil.Close()
	storeC, _ := cache.New("")
	storeC.SetPeerFetch(NewPeerClient([]string{evil.URL}).Fetch)
	computed := false
	_, outcome, err = storeC.GetOrCompute(context.Background(), dig,
		func(context.Context) (map[string][]byte, error) {
			computed = true
			return blobs, nil
		})
	if err != nil || outcome != "miss" || !computed {
		t.Fatalf("corrupt peer: outcome=%q computed=%v err=%v, want miss/true/nil", outcome, computed, err)
	}
}
