package chaos

import (
	"errors"
	"testing"
	"time"
)

func TestAtWithoutInjectorIsZero(t *testing.T) {
	if d := At("anything"); d.Crash || d.Torn || d.Err != nil {
		t.Fatalf("no injector armed but At returned %+v", d)
	}
}

func TestCrashPlanFiresOnceThenDead(t *testing.T) {
	in := New(1)
	in.Arm("p.write", Crash, 1) // fire on the second pass

	if d := in.at("p.write"); d.Crash {
		t.Fatal("crash fired a pass early")
	}
	d := in.at("p.write")
	if !d.Crash {
		t.Fatal("crash plan did not fire on its scheduled pass")
	}
	if !in.Dead() {
		t.Fatal("injector alive after crash")
	}
	// Death is total: every point now crashes, not just the armed one.
	if d := in.at("other.point"); !d.Crash {
		t.Fatal("unrelated point survived a dead injector")
	}
	if fired := in.Fired(); len(fired) != 1 || fired[0] != "p.write" {
		t.Fatalf("fired log %v", fired)
	}
}

func TestTornDecisionIsSeededAndFatal(t *testing.T) {
	fracs := make([]float64, 2)
	for i := range fracs {
		in := New(99)
		in.Arm("p.write", Torn, 0)
		d := in.at("p.write")
		if !d.Torn || d.Frac < 0 || d.Frac >= 1 {
			t.Fatalf("torn decision %+v", d)
		}
		if !in.Dead() {
			t.Fatal("torn write did not kill the injector")
		}
		fracs[i] = d.Frac
	}
	if fracs[0] != fracs[1] {
		t.Fatalf("same seed gave different torn fractions: %v vs %v", fracs[0], fracs[1])
	}
}

func TestErrAndSleepKeepProcessAlive(t *testing.T) {
	boom := errors.New("disk hiccup")
	in := New(1)
	in.ArmErr("p.sync", 0, boom)
	in.ArmSleep("p.read", 0, time.Millisecond)

	if d := in.at("p.sync"); !errors.Is(d.Err, boom) {
		t.Fatalf("err plan returned %+v", d)
	}
	if d := in.at("p.read"); d.Crash || d.Err != nil {
		t.Fatalf("sleep plan altered control flow: %+v", d)
	}
	if in.Dead() {
		t.Fatal("transient faults killed the injector")
	}
	// Plans are one-shot.
	if d := in.at("p.sync"); d.Err != nil {
		t.Fatal("err plan fired twice")
	}
}

func TestActivateRestore(t *testing.T) {
	in := New(1)
	in.Arm("p", Crash, 0)
	restore := Activate(in)
	if d := At("p"); !d.Crash {
		t.Fatal("active injector not consulted")
	}
	if err := Crashed(); !errors.Is(err, ErrCrash) {
		t.Fatalf("Crashed() = %v", err)
	}
	restore()
	if d := At("p"); d.Crash {
		t.Fatal("restore did not deactivate the injector")
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("journal.done.write=torn,cache.persist.write=crash:2,journal.accepted.pre-sync=sleep:0:1ms", 7)
	if err != nil {
		t.Fatal(err)
	}
	// torn on first pass of journal.done.write
	if d := in.at("journal.done.write"); !d.Torn {
		t.Fatalf("parsed torn plan: %+v", d)
	}

	in2, _ := Parse("cache.persist.write=crash:2", 7)
	for i := 0; i < 2; i++ {
		if d := in2.at("cache.persist.write"); d.Crash {
			t.Fatalf("crash:2 fired on pass %d", i+1)
		}
	}
	if d := in2.at("cache.persist.write"); !d.Crash {
		t.Fatal("crash:2 did not fire on the third pass")
	}

	for _, bad := range []string{"nokind", "p=warp", "p=crash:x", "p=crash:1:extra", "p=sleep:0:fast"} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	// Empty entries are tolerated.
	if in, err := Parse(" , ", 1); err != nil || len(in.plans) != 0 {
		t.Fatalf("blank spec: %v, %d plans", err, len(in.plans))
	}
}
