// Package chaos is the fault-injection harness behind the service
// layer's crash-safety story. Instrumented sites in the journal and the
// artifact cache call At(point) at well-known moments — before a write,
// between a write and its fsync, between artifact blobs, before a
// rename — and an armed Injector decides, deterministically from its
// seed, whether that moment crashes the process, tears the write,
// injects an error, or stalls like a slow disk.
//
// Two execution modes share the same plans:
//
//   - In-process (tests): a crash marks the injector dead and surfaces
//     ErrCrash; once dead, every instrumented point fails immediately,
//     so nothing durable happens after the "crash" — the same property
//     a real SIGKILL gives the on-disk state. The test then abandons
//     the manager and proves recovery on a fresh one over the same
//     directories.
//   - Real process (cmd/stcd -chaos): ExitOnCrash makes a firing crash
//     plan call os.Exit(137) at the exact instrumented moment, which is
//     how scripts/serve_crash_smoke.sh produces deterministic torn
//     tails and mid-write crashes without racing a kill from outside.
//
// When no injector is armed the fast path is one atomic pointer load.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCrash is the in-process stand-in for a dead process: once an armed
// crash fires, every instrumented point returns it.
var ErrCrash = errors.New("chaos: simulated crash")

// Kind is what happens when a plan fires.
type Kind int

const (
	// Crash kills the process at the point: os.Exit(137) under
	// ExitOnCrash, otherwise the injector goes dead and ErrCrash
	// propagates.
	Crash Kind = iota + 1
	// Torn is a crash that first lets a prefix of the in-progress write
	// reach the file — the torn-tail case recovery must truncate.
	Torn
	// Err injects a plain error without killing anything (transient
	// fault).
	Err
	// Sleep stalls the point — the slow-disk fault.
	Sleep
)

var kindNames = map[string]Kind{"crash": Crash, "torn": Torn, "err": Err, "sleep": Sleep}

func (k Kind) String() string {
	for n, v := range kindNames {
		if v == k {
			return n
		}
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Decision is what an instrumented point learns from At.
type Decision struct {
	// Crash: the process is (simulated) dead; abandon the operation
	// with ErrCrash. Nothing may be written after it.
	Crash bool
	// Torn: write only Frac of the pending bytes, then crash (call
	// Crashed for the exit-or-error half).
	Torn bool
	// Frac in [0,1): the fraction of the pending write that lands when
	// Torn is set, drawn from the injector's seeded rng.
	Frac float64
	// Err: fail this operation with this error, process stays alive.
	Err error
}

// plan is one armed fault: fire at the (After+1)-th pass through the
// point, once.
type plan struct {
	kind  Kind
	after int
	sleep time.Duration
	err   error
	fired bool
}

// Injector decides fault outcomes at instrumented points. Arm plans,
// Activate it, run the system, and the plans fire deterministically.
type Injector struct {
	// ExitOnCrash makes firing Crash/Torn plans call os.Exit(137)
	// instead of going dead in-process. cmd/stcd sets it; tests don't.
	ExitOnCrash bool

	mu    sync.Mutex
	rng   *rand.Rand
	dead  bool
	plans map[string][]*plan
	fires []string // points that fired, in order
}

// New returns an injector whose torn-write fractions (and any other
// randomized choices) derive from seed alone.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), plans: make(map[string][]*plan)}
}

// Arm schedules kind to fire at the (after+1)-th pass through point.
func (in *Injector) Arm(point string, kind Kind, after int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plans[point] = append(in.plans[point], &plan{kind: kind, after: after, sleep: 2 * time.Millisecond})
}

// ArmErr schedules an injected error at the (after+1)-th pass.
func (in *Injector) ArmErr(point string, after int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plans[point] = append(in.plans[point], &plan{kind: Err, after: after, err: err})
}

// ArmSleep schedules a slow-disk stall at the (after+1)-th pass.
func (in *Injector) ArmSleep(point string, after int, d time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plans[point] = append(in.plans[point], &plan{kind: Sleep, after: after, sleep: d})
}

// Dead reports whether a crash plan has fired.
func (in *Injector) Dead() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dead
}

// Fired returns the points whose plans have fired, in firing order.
func (in *Injector) Fired() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.fires...)
}

// at is the injector-level decision. Sleeps happen inside (they don't
// change control flow at the call site).
func (in *Injector) at(point string) Decision {
	in.mu.Lock()
	if in.dead {
		in.mu.Unlock()
		return Decision{Crash: true}
	}
	var fired *plan
	for _, p := range in.plans[point] {
		if p.fired {
			continue
		}
		if p.after > 0 {
			p.after--
			continue
		}
		p.fired = true
		fired = p
		break
	}
	if fired == nil {
		in.mu.Unlock()
		return Decision{}
	}
	in.fires = append(in.fires, point)
	switch fired.kind {
	case Crash:
		in.dead = true
		in.mu.Unlock()
		in.kill()
		return Decision{Crash: true}
	case Torn:
		in.dead = true
		frac := in.rng.Float64()
		in.mu.Unlock()
		return Decision{Torn: true, Frac: frac}
	case Err:
		in.mu.Unlock()
		return Decision{Err: fired.err}
	case Sleep:
		d := fired.sleep
		in.mu.Unlock()
		time.Sleep(d)
		return Decision{}
	}
	in.mu.Unlock()
	return Decision{}
}

// kill is the real-process half of a crash: exit hard at the
// instrumented moment, like a SIGKILL that always lands between the
// same two syscalls.
func (in *Injector) kill() {
	if in.ExitOnCrash {
		os.Exit(137)
	}
}

// active is the process-wide injector; nil means chaos is off and At is
// a single atomic load.
var active atomic.Pointer[Injector]

// Activate installs the injector globally and returns a restore
// function (tests defer it).
func Activate(in *Injector) (restore func()) {
	prev := active.Swap(in)
	return func() { active.Store(prev) }
}

// At consults the active injector at an instrumented point. With no
// injector armed it returns the zero Decision at pointer-load cost.
func At(point string) Decision {
	in := active.Load()
	if in == nil {
		return Decision{}
	}
	return in.at(point)
}

// Crashed finishes a torn write: under ExitOnCrash the process exits
// here (the prefix is on disk, the suffix never will be); in-process it
// returns ErrCrash for the caller to propagate.
func Crashed() error {
	if in := active.Load(); in != nil {
		in.kill()
	}
	return ErrCrash
}

// Parse builds an injector from a flag spec like
//
//	journal.done.write=torn,cache.persist.write=crash:2,journal.accepted.pre-sync=sleep:0:50ms
//
// i.e. comma-separated point=kind[:after][:dur] entries. It backs
// cmd/stcd's -chaos flag; the returned injector still needs Activate
// (and usually ExitOnCrash=true).
func Parse(spec string, seed int64) (*Injector, error) {
	in := New(seed)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		point, rest, ok := strings.Cut(part, "=")
		if !ok || point == "" {
			return nil, fmt.Errorf("chaos: bad entry %q (want point=kind[:after][:dur])", part)
		}
		fields := strings.Split(rest, ":")
		kind, ok := kindNames[fields[0]]
		if !ok {
			return nil, fmt.Errorf("chaos: unknown kind %q in %q", fields[0], part)
		}
		after := 0
		if len(fields) > 1 && fields[1] != "" {
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("chaos: bad after count %q in %q", fields[1], part)
			}
			after = n
		}
		if kind == Sleep {
			d := 10 * time.Millisecond
			if len(fields) > 2 {
				var err error
				if d, err = time.ParseDuration(fields[2]); err != nil {
					return nil, fmt.Errorf("chaos: bad duration %q in %q", fields[2], part)
				}
			}
			in.ArmSleep(point, after, d)
			continue
		}
		if len(fields) > 2 {
			return nil, fmt.Errorf("chaos: trailing fields in %q", part)
		}
		in.Arm(point, kind, after)
	}
	return in, nil
}
