// Package service is the tuning-as-a-service layer behind cmd/stcd: a
// long-running daemon that exposes the paper's full pipeline
// (characterize -> tune -> restrict -> synthesize -> analyze variation)
// as asynchronous jobs over HTTP/JSON.
//
// The package is deliberately a consumer of the public stdcelltune
// facade, not of the internal pipeline packages: everything the daemon
// can do, a library user can do with the same ctx-first calls, and the
// service's cancellation and error mapping ride entirely on the
// facade's typed sentinels (ErrCancelled, ErrQuarantined,
// ErrWindowInfeasible).
//
// Three pieces:
//
//   - Spec (this file): the versioned request schema stdcelltune-api/1,
//     its validation, normalization, and canonical content digest. The
//     digest keys the artifact cache, so "same request" is a pure
//     function of the spec — not of arrival time or encoding quirks.
//   - Manager (jobs.go): a bounded job queue with per-job cancellation,
//     single-flight artifact computation through the content-addressed
//     cache, per-job span streams, and graceful drain for SIGTERM.
//   - Handler (server.go): the /v1 HTTP surface plus the errors.Is ->
//     HTTP status mapping.
package service

import (
	"errors"
	"fmt"

	"stdcelltune"
	"stdcelltune/internal/digest"
	"stdcelltune/internal/rtlgen"
	"stdcelltune/internal/stdcell"
)

// SchemaSpec is the versioned request schema identifier.
const SchemaSpec = "stdcelltune-api/1"

// ErrBadSpec marks request-validation failures; the HTTP layer maps it
// to 400.
var ErrBadSpec = errors.New("service: invalid request spec")

// Spec is one tuning-service request: a full pipeline run described by
// value. The zero value of every field means "the paper's default", so
// `{}` is a valid request reproducing the headline experiment
// (sigma-ceiling 0.02 on the 20k-gate MCU at the typical corner).
type Spec struct {
	// Schema is the request schema version. Empty means SchemaSpec;
	// anything else must match it exactly.
	Schema string `json:"schema,omitempty"`
	// Corner is the characterization corner: "typical", "fast" or
	// "slow". Empty means "typical".
	Corner string `json:"corner,omitempty"`
	// Design selects the evaluation workload: "mcu" (the paper's
	// 20k-gate microcontroller) or "mcu-small" (the scaled-down
	// variant used by quick runs). Empty means "mcu".
	Design string `json:"design,omitempty"`
	// Instances is the Monte-Carlo instance count; 0 means the paper's
	// 50.
	Instances int `json:"instances,omitempty"`
	// Seed is the variation sampler seed; 0 means the paper's 1.
	Seed int64 `json:"seed,omitempty"`
	// Method is the tuning method slug (see MethodSlugs); empty means
	// "sigma-ceiling".
	Method string `json:"method,omitempty"`
	// Bound is the swept constraint value of the method; 0 means the
	// method's headline value from the paper's Table 2 sweep.
	Bound float64 `json:"bound,omitempty"`
	// ClockNS is the synthesis clock period in ns; 0 means 5.0.
	ClockNS float64 `json:"clock_ns,omitempty"`
	// Rho is the path correlation of the variation analysis; 0 is the
	// paper's local-variation assumption.
	Rho float64 `json:"rho,omitempty"`
}

// methodSlugs maps the wire slugs to tuning methods, in paper order.
var methodSlugs = []struct {
	slug string
	m    stdcelltune.Method
}{
	{"cell-strength-load-slope", stdcelltune.CellStrengthLoadSlope},
	{"cell-strength-slew-slope", stdcelltune.CellStrengthSlewSlope},
	{"cell-load-slope", stdcelltune.CellLoadSlope},
	{"cell-slew-slope", stdcelltune.CellSlewSlope},
	{"sigma-ceiling", stdcelltune.SigmaCeiling},
}

// MethodSlugs lists the accepted method slugs in paper order.
func MethodSlugs() []string {
	out := make([]string, len(methodSlugs))
	for i, e := range methodSlugs {
		out[i] = e.slug
	}
	return out
}

// MethodSlug returns the wire slug of a tuning method.
func MethodSlug(m stdcelltune.Method) string {
	for _, e := range methodSlugs {
		if e.m == m {
			return e.slug
		}
	}
	return "unknown"
}

func methodFromSlug(slug string) (stdcelltune.Method, bool) {
	for _, e := range methodSlugs {
		if e.slug == slug {
			return e.m, true
		}
	}
	return 0, false
}

func cornerFromSlug(slug string) (stdcell.Corner, bool) {
	switch slug {
	case "typical":
		return stdcell.Typical, true
	case "fast":
		return stdcell.Fast, true
	case "slow":
		return stdcell.Slow, true
	}
	return 0, false
}

// headlineBound is the paper's headline sweep value of a method: the
// bound used when a spec leaves it zero.
func headlineBound(m stdcelltune.Method) float64 {
	if m == stdcelltune.SigmaCeiling {
		return 0.02
	}
	return 0.03
}

// Normalized returns the spec with every defaulted field filled in.
// Digest and the pipeline both operate on the normalized form, so a
// request written `{}` and one spelling out the defaults share a cache
// entry.
func (s Spec) Normalized() Spec {
	s.Schema = SchemaSpec
	if s.Corner == "" {
		s.Corner = "typical"
	}
	if s.Design == "" {
		s.Design = "mcu"
	}
	if s.Instances == 0 {
		s.Instances = 50
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Method == "" {
		s.Method = MethodSlug(stdcelltune.SigmaCeiling)
	}
	if s.Bound == 0 {
		if m, ok := methodFromSlug(s.Method); ok {
			s.Bound = headlineBound(m)
		}
	}
	if s.ClockNS == 0 {
		s.ClockNS = 5.0
	}
	return s
}

// Validate checks the spec. Every failure wraps ErrBadSpec.
func (s Spec) Validate() error {
	if s.Schema != "" && s.Schema != SchemaSpec {
		return fmt.Errorf("%w: schema %q, want %q", ErrBadSpec, s.Schema, SchemaSpec)
	}
	n := s.Normalized()
	if _, ok := cornerFromSlug(n.Corner); !ok {
		return fmt.Errorf("%w: corner %q (want typical, fast or slow)", ErrBadSpec, n.Corner)
	}
	if n.Design != "mcu" && n.Design != "mcu-small" {
		return fmt.Errorf("%w: design %q (want mcu or mcu-small)", ErrBadSpec, n.Design)
	}
	if _, ok := methodFromSlug(n.Method); !ok {
		return fmt.Errorf("%w: method %q (want one of %v)", ErrBadSpec, n.Method, MethodSlugs())
	}
	if n.Instances < 2 {
		return fmt.Errorf("%w: instances %d (want >= 2 for sigma estimation)", ErrBadSpec, n.Instances)
	}
	if n.Bound < 0 {
		return fmt.Errorf("%w: bound %g must not be negative", ErrBadSpec, n.Bound)
	}
	if n.ClockNS <= 0 {
		return fmt.Errorf("%w: clock_ns %g must be positive", ErrBadSpec, n.ClockNS)
	}
	if n.Rho < 0 || n.Rho > 1 {
		return fmt.Errorf("%w: rho %g outside [0,1]", ErrBadSpec, n.Rho)
	}
	return nil
}

// Digest returns the canonical content digest of the spec: the cache
// key. Two specs digest equally iff their normalized forms are
// field-for-field identical; the framing (domain separation, length
// prefixes, hex-exact floats) lives in internal/digest and is shared
// with exp.FlowConfig.Digest.
func (s Spec) Digest() string {
	n := s.Normalized()
	c := digest.New(SchemaSpec)
	c.Str("corner", n.Corner)
	c.Str("design", n.Design)
	c.Int("instances", int64(n.Instances))
	c.Int("seed", n.Seed)
	c.Str("method", n.Method)
	c.Float("bound", n.Bound)
	c.Float("clock_ns", n.ClockNS)
	c.Float("rho", n.Rho)
	return c.Sum()
}

// designConfig maps the design slug to an rtlgen configuration.
func designConfig(slug string) (rtlgen.Config, bool) {
	switch slug {
	case "mcu":
		return rtlgen.DefaultConfig(), true
	case "mcu-small":
		return rtlgen.SmallConfig(), true
	}
	return rtlgen.Config{}, false
}
