package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"time"

	"stdcelltune/internal/obs"
)

// Serving-tier RED metrics, in the process-default registry so both the
// daemon's GET /metrics and the -debugaddr server expose them. Label
// values are drawn from the static route patterns registered in Handler
// plus the five status classes — bounded cardinality by construction
// (never raw request data such as job ids; the cardinality regression
// test pins this).
var (
	httpRequests = obs.Default().CounterVec("http_requests_total", "route", "code")
	httpInFlight = obs.Default().GaugeVec("http_in_flight_requests", "route")
	httpLatency  = obs.Default().HDRVec("http_request_duration_seconds", "route")
)

// requestIDHeader is the correlation header: accepted from the client
// when well-formed, minted otherwise, and always echoed on the
// response. The same id reaches the job document, the slog accept line
// and the job's trace spans.
const requestIDHeader = "X-Request-ID"

type ctxKey int

const requestIDKey ctxKey = iota

// RequestIDFrom returns the request id accepted or minted by the
// instrument middleware, "" outside an instrumented handler.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// validRequestID accepts client-supplied ids in a conservative charset
// so a hostile header can't smuggle newlines into logs or label values.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// newRequestID mints a 16-hex-char random id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; correlation degrades
		// to a fixed marker rather than taking the request down.
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status for the request counter's
// code label. Flush is forwarded so SSE streaming keeps working through
// the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// statusClass buckets a status code into "2xx".."5xx" for the code
// label (a bounded set, unlike raw codes × routes).
func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// instrument wraps a handler with the serving-tier observability
// contract: request-id acceptance/minting and echo, RED metrics under
// the given route label (the static mux pattern — "GET /v1/jobs/{id}",
// never an actual id), in-flight tracking and latency recording.
func instrument(route string, next http.HandlerFunc) http.HandlerFunc {
	inFlight := httpInFlight.With(route)
	latency := httpLatency.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if !validRequestID(id) {
			id = newRequestID()
		}
		w.Header().Set(requestIDHeader, id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, id))

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		inFlight.Add(1)
		start := time.Now()
		defer func() {
			inFlight.Add(-1)
			latency.Observe(time.Since(start))
			httpRequests.With(route, statusClass(sw.status)).Add(1)
		}()
		next(sw, r)
	}
}
