// Package shard is the cluster tier of the tuning service: a
// coordinator-side work queue with lease-based work stealing, and the
// worker-side poll loop that executes characterization shards.
//
// The unit of work is one contiguous slice [Lo, Hi) of a characterize
// job's N Monte-Carlo instances. Workers pull tasks from the shared
// queue (idle workers pull more — that IS the work stealing; there is
// no per-worker assignment to steal from), fold their slice through
// the streaming Welford path, and ship back a compact
// stdcelltune-shard/1 partial (statlib.Partial). Every lease carries a
// TTL and a fencing token: a dead or stalled worker's lease expires,
// the task re-queues, and the next completion with the old token is
// rejected — a shard can therefore be computed twice but never counted
// twice. The coordinator merges partials in fixed shard order, so the
// result is independent of arrival order and run-to-run deterministic
// (see statlib.MergeShards).
//
// The wire protocol is four JSON POST/GET routes the service handler
// mounts under /v1/cluster (see RegisterRequest and friends); the
// worker side needs only this package and net/http, keeping the
// dependency direction service -> shard.
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"stdcelltune/internal/obs"
	"stdcelltune/internal/statlib"
)

// ErrStaleLease rejects a completion whose fencing token no longer
// matches: the lease expired (and possibly re-queued or re-leased)
// before the worker reported back. The worker's result is discarded —
// the current leaseholder's will be the one counted.
var ErrStaleLease = errors.New("shard: stale lease token")

// ErrUnknownNode rejects requests from a node id the coordinator does
// not know (never registered, or the coordinator restarted). Workers
// re-register and retry.
var ErrUnknownNode = errors.New("shard: unknown node")

// ErrNoWorkers fails a task group that stalled with no live workers:
// nothing is leased, the queue is non-empty, and no node has polled
// within the liveness window. The caller (the service pipeline) falls
// back to computing locally.
var ErrNoWorkers = errors.New("shard: no live workers")

// CharTask describes one characterization shard. Everything a worker
// needs to regenerate instances [Lo, Hi) bit-identically is in the
// task: the per-instance RNG streams are named by (seed, instance,
// cell), so where an instance is generated cannot change its bytes.
type CharTask struct {
	// Library is the statistical library name under construction.
	Library string `json:"library"`
	// Corner is the spec corner slug ("typical", "fast", "slow").
	Corner string `json:"corner"`
	Seed   int64  `json:"seed"`
	// CharNoise is the characterization-noise setting of the fold,
	// carried explicitly so the protocol pins it rather than trusting
	// both sides to share a default.
	CharNoise float64 `json:"char_noise"`
	// N/Shards/Index/Lo/Hi mirror statlib.Partial: this task covers
	// instances [Lo, Hi) of N, as shard Index of Shards.
	N      int `json:"instances"`
	Shards int `json:"shards"`
	Index  int `json:"shard"`
	Lo     int `json:"lo"`
	Hi     int `json:"hi"`
}

// Task is one queued unit of work.
type Task struct {
	ID    string    `json:"id"`
	Group string    `json:"group"`
	Char  *CharTask `json:"characterize,omitempty"`
}

// Lease is a granted task: the worker must Complete it with the exact
// Token before Expires, or the task re-queues for someone else.
type Lease struct {
	Task    Task      `json:"task"`
	Token   string    `json:"token"`
	Expires time.Time `json:"expires"`
}

// Wire bodies of the /v1/cluster routes.
type (
	// RegisterRequest announces a node. PeerAddr optionally advertises
	// an artifact-serving HTTP address for the peer cache tier.
	RegisterRequest struct {
		Name     string `json:"name"`
		PeerAddr string `json:"peer_addr,omitempty"`
	}
	RegisterResponse struct {
		Node       string        `json:"node"`
		LeaseTTLNS time.Duration `json:"lease_ttl_ns"`
	}
	LeaseRequest struct {
		Node string `json:"node"`
	}
	CompleteRequest struct {
		Node   string          `json:"node"`
		Task   string          `json:"task"`
		Token  string          `json:"token"`
		Result json.RawMessage `json:"result,omitempty"`
		Error  string          `json:"error,omitempty"`
	}
	CompleteResponse struct {
		OK bool `json:"ok"`
	}
)

// Stats is the coordinator snapshot served on GET /v1/cluster.
type Stats struct {
	Workers       int   `json:"workers"`
	Nodes         int   `json:"nodes"`
	QueueDepth    int   `json:"queue_depth"`
	Leased        int   `json:"leased"`
	Enqueued      int64 `json:"tasks_enqueued"`
	Completed     int64 `json:"tasks_completed"`
	Steals        int64 `json:"steals"`
	LeaseExpiries int64 `json:"lease_expiries"`
	StaleRejected int64 `json:"stale_rejected"`
}

// ShardSet is the retained partial set of one finished group, the
// document obscheck -shard validates.
type ShardSet struct {
	Schema    string            `json:"schema"`
	Group     string            `json:"group"`
	Instances int               `json:"instances"`
	Shards    []json.RawMessage `json:"shards"`
}

// Options configures a Coordinator.
type Options struct {
	// LeaseTTL bounds how long a worker may sit on a task before it is
	// presumed dead and the task re-queues. Default 10s.
	LeaseTTL time.Duration
	// MaxAttempts bounds how often one task may be (re-)leased before
	// its group fails — the backstop against a shard that crashes every
	// worker. Default 5.
	MaxAttempts int
	// Retain bounds how many finished groups keep their partial sets
	// queryable via ShardSet. Default 8.
	Retain int
	// Now injects a clock for deterministic tests.
	Now func() time.Time
	// OnRegister, when set, observes node registrations (name and
	// advertised peer address) — the hook the daemon uses to grow the
	// peer-cache tier as workers join.
	OnRegister func(name, peerAddr string)
}

type task struct {
	t        Task
	token    string
	node     string // current leaseholder, "" when queued
	lastNode string // previous leaseholder, for steal accounting
	expires  time.Time
	attempts int
}

type group struct {
	id        string
	instances int
	results   []json.RawMessage
	remaining int
	err       error
	done      chan struct{}
	progress  time.Time // last enqueue/lease/complete, for stall detection
}

// Coordinator owns the shared work queue. All methods are safe for
// concurrent use; lease expiry is lazy (checked on every entry point
// and on the Run wait loop's tick), so no background goroutine runs
// while the queue is idle.
type Coordinator struct {
	ttl         time.Duration
	maxAttempts int
	retain      int
	now         func() time.Time
	onRegister  func(name, peerAddr string)

	mu       sync.Mutex
	seq      int
	nodes    map[string]time.Time // node id -> last seen
	ready    []*task              // FIFO; re-queued tasks go to the front
	leased   map[string]*task     // task id -> leased task
	groups   map[string]*group
	retained []*ShardSet // most recent finished groups, oldest first

	enqueued, completed, steals, expiries, stale int64
}

// New builds a coordinator and registers its queue gauges with the
// process metrics registry.
func New(opts Options) *Coordinator {
	c := &Coordinator{
		ttl:         opts.LeaseTTL,
		maxAttempts: opts.MaxAttempts,
		retain:      opts.Retain,
		now:         opts.Now,
		onRegister:  opts.OnRegister,
		nodes:       make(map[string]time.Time),
		leased:      make(map[string]*task),
		groups:      make(map[string]*group),
	}
	if c.ttl <= 0 {
		c.ttl = 10 * time.Second
	}
	if c.maxAttempts <= 0 {
		c.maxAttempts = 5
	}
	if c.retain <= 0 {
		c.retain = 8
	}
	if c.now == nil {
		c.now = time.Now
	}
	reg := obs.Default()
	reg.GaugeFunc("shard.queue_depth", func() float64 { return float64(c.Stats().QueueDepth) })
	reg.GaugeFunc("shard.leased", func() float64 { return float64(c.Stats().Leased) })
	reg.GaugeFunc("shard.workers", func() float64 { return float64(c.Stats().Workers) })
	return c
}

// LeaseTTL reports the configured lease duration.
func (c *Coordinator) LeaseTTL() time.Duration { return c.ttl }

// liveWindow is how recently a node must have polled to count as a
// live worker: three lease TTLs, floored so fast test TTLs don't
// declare the fleet dead between polls.
func (c *Coordinator) liveWindow() time.Duration {
	w := 3 * c.ttl
	if w < 5*time.Second {
		w = 5 * time.Second
	}
	return w
}

// Register adds (or refreshes) a node and returns its id.
func (c *Coordinator) Register(name, peerAddr string) RegisterResponse {
	c.mu.Lock()
	c.seq++
	id := "node-" + strconv.Itoa(c.seq)
	if name != "" {
		id = name + "-" + strconv.Itoa(c.seq)
	}
	c.nodes[id] = c.now()
	hook := c.onRegister
	c.mu.Unlock()
	if hook != nil {
		hook(name, peerAddr)
	}
	obs.Default().Counter("shard.nodes_registered").Add(1)
	return RegisterResponse{Node: id, LeaseTTLNS: c.ttl}
}

// Lease grants the next queued task to the node, or ok=false when the
// queue is empty. Granting a task previously held by a different node
// is a steal (the idle node pulled work a dead or slow one dropped).
func (c *Coordinator) Lease(node string) (Lease, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[node]; !ok {
		return Lease{}, false, ErrUnknownNode
	}
	now := c.now()
	c.nodes[node] = now
	c.expireLocked(now)
	if len(c.ready) == 0 {
		return Lease{}, false, nil
	}
	t := c.ready[0]
	c.ready = c.ready[1:]
	t.attempts++
	if t.attempts > c.maxAttempts {
		c.failGroupLocked(t.t.Group, fmt.Errorf("shard: task %s exceeded %d attempts", t.t.ID, c.maxAttempts))
		return Lease{}, false, nil
	}
	if t.lastNode != "" && t.lastNode != node {
		c.steals++
		obs.Default().Counter("shard.steals").Add(1)
	}
	t.node = node
	t.token = t.t.ID + "#" + strconv.Itoa(t.attempts)
	t.expires = now.Add(c.ttl)
	c.leased[t.t.ID] = t
	if g, ok := c.groups[t.t.Group]; ok {
		g.progress = now
	}
	return Lease{Task: t.t, Token: t.token, Expires: t.expires}, true, nil
}

// Complete reports a task's outcome. The fencing token must match the
// current lease exactly; a stale token (expired and re-queued or
// re-leased) is rejected with ErrStaleLease and the result discarded,
// which is what makes a twice-computed shard impossible to count
// twice. A worker-side compute error re-queues the task (front of the
// queue) unless its group already failed.
func (c *Coordinator) Complete(node, taskID, token string, result json.RawMessage, errMsg string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[node]; !ok {
		return ErrUnknownNode
	}
	now := c.now()
	c.nodes[node] = now
	c.expireLocked(now)
	t, ok := c.leased[taskID]
	if !ok || t.token != token || t.node != node {
		c.stale++
		obs.Default().Counter("shard.stale_rejected").Add(1)
		return ErrStaleLease
	}
	delete(c.leased, taskID)
	g, ok := c.groups[t.t.Group]
	if !ok {
		// Group cancelled while the task was in flight; drop silently.
		return nil
	}
	g.progress = now
	if errMsg != "" {
		t.node, t.lastNode, t.token = "", t.node, ""
		c.ready = append([]*task{t}, c.ready...)
		obs.Default().Counter("shard.tasks_requeued").Add(1)
		return nil
	}
	g.results[t.t.Char.Index] = result
	g.remaining--
	c.completed++
	obs.Default().Counter("shard.tasks_completed").Add(1)
	if g.remaining == 0 {
		c.finishGroupLocked(g)
	}
	return nil
}

// expireLocked re-queues every lease past its deadline. Re-queued
// tasks go to the front so a recovered shard is retried before new
// work, keeping the stalled job's completion time bounded.
func (c *Coordinator) expireLocked(now time.Time) {
	var expired []*task
	for _, t := range c.leased {
		if now.After(t.expires) {
			expired = append(expired, t)
		}
	}
	// Deterministic re-queue order (map iteration is not).
	sort.Slice(expired, func(i, j int) bool { return expired[i].t.ID < expired[j].t.ID })
	for _, t := range expired {
		delete(c.leased, t.t.ID)
		t.lastNode, t.node, t.token = t.node, "", ""
		c.ready = append([]*task{t}, c.ready...)
		c.expiries++
		obs.Default().Counter("shard.lease_expiries").Add(1)
	}
}

// failGroupLocked fails a group and drops its queued/leased tasks.
func (c *Coordinator) failGroupLocked(id string, err error) {
	g, ok := c.groups[id]
	if !ok {
		return
	}
	g.err = err
	c.finishGroupLocked(g)
	c.dropGroupTasksLocked(id)
}

func (c *Coordinator) dropGroupTasksLocked(id string) {
	kept := c.ready[:0]
	for _, t := range c.ready {
		if t.t.Group != id {
			kept = append(kept, t)
		}
	}
	c.ready = kept
	for tid, t := range c.leased {
		if t.t.Group == id {
			delete(c.leased, tid)
		}
	}
}

func (c *Coordinator) finishGroupLocked(g *group) {
	delete(c.groups, g.id)
	if g.err == nil {
		set := &ShardSet{Schema: statlib.SchemaShard, Group: g.id, Instances: g.instances, Shards: g.results}
		c.retained = append(c.retained, set)
		if len(c.retained) > c.retain {
			c.retained = c.retained[len(c.retained)-c.retain:]
		}
	}
	close(g.done)
}

// Run enqueues a task group and blocks until every task completed, the
// group failed, or ctx is cancelled (which drops the group's tasks).
// Results are returned indexed by shard, not by completion order. The
// wait loop ticks at a fraction of the lease TTL to expire abandoned
// leases even when no worker is polling, and fails the group with
// ErrNoWorkers if it stalls with no live workers at all.
func (c *Coordinator) Run(ctx context.Context, id string, instances int, tasks []Task) ([]json.RawMessage, error) {
	if len(tasks) == 0 {
		return nil, errors.New("shard: empty task group")
	}
	g := &group{
		id:        id,
		instances: instances,
		results:   make([]json.RawMessage, len(tasks)),
		remaining: len(tasks),
		done:      make(chan struct{}),
	}
	c.mu.Lock()
	if _, exists := c.groups[id]; exists {
		c.mu.Unlock()
		return nil, fmt.Errorf("shard: group %s already running", id)
	}
	g.progress = c.now()
	c.groups[id] = g
	for i := range tasks {
		c.ready = append(c.ready, &task{t: tasks[i]})
		c.enqueued++
	}
	c.mu.Unlock()
	obs.Default().Counter("shard.tasks_enqueued").Add(int64(len(tasks)))

	tick := c.ttl / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-g.done:
			if g.err != nil {
				return nil, g.err
			}
			return g.results, nil
		case <-ticker.C:
			c.mu.Lock()
			now := c.now()
			c.expireLocked(now)
			if g.err == nil && g.remaining > 0 && c.workersLocked(now) == 0 &&
				now.Sub(g.progress) > c.liveWindow() {
				c.failGroupLocked(id, ErrNoWorkers)
			}
			c.mu.Unlock()
		case <-ctx.Done():
			c.mu.Lock()
			if _, live := c.groups[id]; live {
				delete(c.groups, id)
				c.dropGroupTasksLocked(id)
			}
			c.mu.Unlock()
			return nil, ctx.Err()
		}
	}
}

func (c *Coordinator) workersLocked(now time.Time) int {
	live := 0
	for _, seen := range c.nodes {
		if now.Sub(seen) <= c.liveWindow() {
			live++
		}
	}
	return live
}

// Workers reports how many nodes polled within the liveness window —
// the pipeline's "is distribution worth it" signal.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workersLocked(c.now())
}

// Stats snapshots the coordinator counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Workers:       c.workersLocked(c.now()),
		Nodes:         len(c.nodes),
		QueueDepth:    len(c.ready),
		Leased:        len(c.leased),
		Enqueued:      c.enqueued,
		Completed:     c.completed,
		Steals:        c.steals,
		LeaseExpiries: c.expiries,
		StaleRejected: c.stale,
	}
}

// ShardSets lists the retained finished groups, most recent last.
func (c *Coordinator) ShardSets() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.retained))
	for i, s := range c.retained {
		out[i] = s.Group
	}
	return out
}

// ShardSet returns the retained partial set of a finished group.
func (c *Coordinator) ShardSet(id string) (*ShardSet, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.retained {
		if s.Group == id {
			return s, true
		}
	}
	return nil, false
}

// CharTasks tiles a characterize job into shard tasks. The split is a
// pure function of (n, size) — never of worker count or timing — which
// is half of the determinism argument; the other half is the
// fixed-order merge.
func CharTasks(group, library, corner string, seed int64, charNoise float64, n, size int) []Task {
	ranges := statlib.ShardRanges(n, size)
	tasks := make([]Task, len(ranges))
	for i, r := range ranges {
		tasks[i] = Task{
			ID:    group + "/char/" + strconv.Itoa(i),
			Group: group,
			Char: &CharTask{
				Library: library, Corner: corner, Seed: seed, CharNoise: charNoise,
				N: n, Shards: len(ranges), Index: i, Lo: r[0], Hi: r[1],
			},
		}
	}
	return tasks
}
