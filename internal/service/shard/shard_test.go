package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced time source: lease expiry becomes a
// pure function of the test script, not of scheduler timing.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func result(i int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"shard":%d}`, i))
}

// TestKillWorkerMidJob is the deterministic version of the chaos
// smoke's kill: worker A leases a shard and dies silently; the lease
// expires, the shard re-queues, worker B steals it, and A's late
// completion is rejected by the fencing token — the job completes with
// every shard counted exactly once, B's bytes winning.
func TestKillWorkerMidJob(t *testing.T) {
	clock := newFakeClock()
	c := New(Options{LeaseTTL: time.Second, Now: clock.Now})
	a := c.Register("a", "").Node
	b := c.Register("b", "").Node

	tasks := CharTasks("g1", "stat", "typical", 1, 0.02, 8, 2)
	if len(tasks) != 4 {
		t.Fatalf("task count %d, want 4", len(tasks))
	}

	type runOut struct {
		results []json.RawMessage
		err     error
	}
	done := make(chan runOut, 1)
	go func() {
		rs, err := c.Run(context.Background(), "g1", 8, tasks)
		done <- runOut{rs, err}
	}()

	// Wait for the tasks to be enqueued before leasing.
	waitFor(t, func() bool { return c.Stats().QueueDepth+c.Stats().Leased == 4 })

	mustLease := func(node string, wantTask string) Lease {
		t.Helper()
		l, ok, err := c.Lease(node)
		if err != nil || !ok {
			t.Fatalf("Lease(%s): ok=%v err=%v", node, ok, err)
		}
		if l.Task.ID != wantTask {
			t.Fatalf("Lease(%s) granted %s, want %s", node, l.Task.ID, wantTask)
		}
		return l
	}

	l0 := mustLease(a, "g1/char/0")
	if err := c.Complete(a, l0.Task.ID, l0.Token, result(0), ""); err != nil {
		t.Fatal(err)
	}
	// A leases shard 1 and dies silently, mid-shard.
	l1 := mustLease(a, "g1/char/1")

	// B works through the remaining queue.
	l2 := mustLease(b, "g1/char/2")
	if err := c.Complete(b, l2.Task.ID, l2.Token, result(2), ""); err != nil {
		t.Fatal(err)
	}
	l3 := mustLease(b, "g1/char/3")
	if err := c.Complete(b, l3.Task.ID, l3.Token, result(3), ""); err != nil {
		t.Fatal(err)
	}
	// Queue drained; shard 1 still held by the dead worker.
	if _, ok, err := c.Lease(b); ok || err != nil {
		t.Fatalf("queue should be empty while shard 1 is leased (ok=%v err=%v)", ok, err)
	}

	// The lease TTL passes; B's next poll expires it and steals the shard.
	clock.Advance(1500 * time.Millisecond)
	steal := mustLease(b, "g1/char/1")
	if steal.Token == l1.Token {
		t.Fatal("re-lease kept the old fencing token")
	}
	st := c.Stats()
	if st.LeaseExpiries != 1 || st.Steals != 1 {
		t.Fatalf("stats after steal: expiries=%d steals=%d, want 1/1", st.LeaseExpiries, st.Steals)
	}

	// Zombie A reports its stale result: rejected, not double-counted.
	if err := c.Complete(a, l1.Task.ID, l1.Token, json.RawMessage(`{"from":"zombie"}`), ""); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("zombie completion: err=%v, want ErrStaleLease", err)
	}
	if st := c.Stats(); st.StaleRejected != 1 {
		t.Fatalf("stale_rejected=%d, want 1", st.StaleRejected)
	}

	bBytes := json.RawMessage(`{"shard":1,"recomputed":true}`)
	if err := c.Complete(b, steal.Task.ID, steal.Token, bBytes, ""); err != nil {
		t.Fatal(err)
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if len(out.results) != 4 {
		t.Fatalf("got %d results, want 4", len(out.results))
	}
	// Results are shard-indexed, and shard 1 is B's recomputation.
	for i, want := range []string{string(result(0)), string(bBytes), string(result(2)), string(result(3))} {
		if string(out.results[i]) != want {
			t.Fatalf("result[%d] = %s, want %s", i, out.results[i], want)
		}
	}

	// The finished set is retained for obscheck -shard.
	set, ok := c.ShardSet("g1")
	if !ok || set.Schema == "" || set.Instances != 8 || len(set.Shards) != 4 {
		t.Fatalf("ShardSet: ok=%v set=%+v", ok, set)
	}
}

// TestRunNoWorkersStalls: a group with work queued, nothing leased and
// no live node fails with ErrNoWorkers instead of hanging forever.
func TestRunNoWorkersStalls(t *testing.T) {
	clock := newFakeClock()
	c := New(Options{LeaseTTL: 100 * time.Millisecond, Now: clock.Now})
	tasks := CharTasks("g", "stat", "typical", 1, 0.02, 4, 2)
	errc := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), "g", 4, tasks)
		errc <- err
	}()
	// Jump past the liveness window (only after the group is queued, so
	// its progress stamp predates the jump); the wait loop's real-time
	// tick observes the fake clock and declares the fleet dead.
	waitFor(t, func() bool { return c.Stats().QueueDepth == 2 })
	clock.Advance(10 * time.Second)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrNoWorkers) {
			t.Fatalf("err = %v, want ErrNoWorkers", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not fail with no workers")
	}
}

// TestRunCancelDropsTasks: cancelling the submitting context drops the
// group's queued tasks so they never leak to workers.
func TestRunCancelDropsTasks(t *testing.T) {
	c := New(Options{LeaseTTL: time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, "g", 4, CharTasks("g", "stat", "typical", 1, 0.02, 4, 2))
		errc <- err
	}()
	waitFor(t, func() bool { return c.Stats().QueueDepth == 2 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := c.Stats(); st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after cancel, want 0", st.QueueDepth)
	}
}

// TestTaskAttemptBound: a shard that keeps getting leased and expiring
// fails its group after MaxAttempts instead of looping forever.
func TestTaskAttemptBound(t *testing.T) {
	clock := newFakeClock()
	c := New(Options{LeaseTTL: time.Second, MaxAttempts: 2, Now: clock.Now})
	n := c.Register("crashy", "").Node
	errc := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), "g", 2, CharTasks("g", "stat", "typical", 1, 0.02, 2, 2))
		errc <- err
	}()
	waitFor(t, func() bool { return c.Stats().QueueDepth == 1 })
	for i := 0; i < 2; i++ {
		if _, ok, err := c.Lease(n); !ok || err != nil {
			t.Fatalf("lease %d: ok=%v err=%v", i, ok, err)
		}
		clock.Advance(1500 * time.Millisecond)
	}
	// Third grant exceeds MaxAttempts=2 and fails the group.
	if _, ok, _ := c.Lease(n); ok {
		t.Fatal("task leased past its attempt bound")
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("group succeeded despite attempt bound")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("group did not fail")
	}
}

// TestLeaseUnknownNode: polls from unregistered nodes are rejected so
// a restarted coordinator forces re-registration.
func TestLeaseUnknownNode(t *testing.T) {
	c := New(Options{})
	if _, _, err := c.Lease("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	if err := c.Complete("ghost", "t", "tok", nil, ""); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}
