package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"stdcelltune/internal/liberty"
	"stdcelltune/internal/obs"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/variation"
)

// Executor computes shard tasks. It is the same fold a single-node
// characterization performs — variation.Instance per index, streamed
// through Welford accumulators — restricted to the task's [Lo, Hi)
// slice, so a shard's samples are bit-identical to the ones the
// single-node path would have folded at the same indexes.
type Executor struct {
	// SimCharLatency, when positive, sleeps this long per generated
	// instance, modeling an external characterizer (a SPICE run per
	// instance) whose latency — not local CPU — bounds the fold. It is
	// the knob the cluster benchmarks use to measure scheduling speedup
	// honestly on a single-core CI box.
	SimCharLatency time.Duration

	mu   sync.Mutex
	cats map[string]*stdcell.Catalogue
}

func (e *Executor) catalogue(corner stdcell.Corner) *stdcell.Catalogue {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cats == nil {
		e.cats = make(map[string]*stdcell.Catalogue)
	}
	cat, ok := e.cats[corner.Name()]
	if !ok {
		cat = stdcell.NewCatalogue(corner)
		e.cats[corner.Name()] = cat
	}
	return cat
}

func cornerFromSlug(slug string) (stdcell.Corner, bool) {
	switch slug {
	case "typical":
		return stdcell.Typical, true
	case "fast":
		return stdcell.Fast, true
	case "slow":
		return stdcell.Slow, true
	}
	return 0, false
}

// Execute runs one task and returns its serialized result (a
// statlib.Partial for characterize tasks).
func (e *Executor) Execute(ctx context.Context, t Task) (json.RawMessage, error) {
	if t.Char == nil {
		return nil, fmt.Errorf("shard: task %s carries no payload", t.ID)
	}
	ct := t.Char
	corner, ok := cornerFromSlug(ct.Corner)
	if !ok {
		return nil, fmt.Errorf("shard: task %s has unknown corner %q", t.ID, ct.Corner)
	}
	cat := e.catalogue(corner)
	sm := variation.NewSampler(ct.Seed)
	cfg := variation.Config{N: ct.N, Seed: ct.Seed, CharNoise: ct.CharNoise}
	gen := func(i int) (*liberty.Library, error) {
		if err := sleepCtx(ctx, e.SimCharLatency); err != nil {
			return nil, err
		}
		return variation.Instance(cat, sm, i, cfg), nil
	}
	p, err := statlib.FoldShard(ct.Library, ct.N, ct.Shards, ct.Index, ct.Lo, ct.Hi, gen)
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("shard: encode partial: %w", err)
	}
	return raw, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Worker is the client side of the cluster protocol: register with the
// coordinator, then poll for leases, execute, and complete, until the
// context is cancelled. Network failures back off and retry — a worker
// is a daemon that outlives coordinator restarts (ErrUnknownNode after
// a restart triggers re-registration).
type Worker struct {
	// Base is the coordinator's base URL, e.g. "http://127.0.0.1:8372".
	Base string
	// Name labels the worker in coordinator state and logs.
	Name string
	// PeerAddr, when set, advertises this worker's own artifact endpoint
	// (host:port of its stcd HTTP listener) at registration; the
	// coordinator feeds it to the peer cache tier.
	PeerAddr string
	// Exec computes the tasks; its SimCharLatency models external
	// characterizer latency.
	Exec Executor
	// Poll is the idle poll interval. Default 100ms.
	Poll time.Duration
	// Client is the HTTP client; default has a 30s timeout.
	Client *http.Client
}

// Run executes the worker loop until ctx is cancelled. Only a nil or
// ctx error is returned: transient coordinator failures are retried
// with backoff, not surfaced.
func (w *Worker) Run(ctx context.Context) error {
	poll := w.Poll
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	log := obs.Log().With("worker", w.Name, "coordinator", w.Base)

	node := ""
	backoff := poll
	for ctx.Err() == nil {
		if node == "" {
			reg, err := w.register(ctx)
			if err != nil {
				log.Warn("register failed; backing off", "err", err, "backoff", backoff.String())
				if err := sleepCtx(ctx, backoff); err != nil {
					return err
				}
				if backoff < 5*time.Second {
					backoff *= 2
				}
				continue
			}
			node = reg.Node
			backoff = poll
			log.Info("registered", "node", node, "lease_ttl", reg.LeaseTTLNS.String())
		}

		lease, ok, err := w.lease(ctx, node)
		if err != nil {
			if errors.Is(err, ErrUnknownNode) {
				log.Warn("coordinator forgot this node; re-registering")
				node = ""
				continue
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			log.Warn("lease poll failed; backing off", "err", err, "backoff", backoff.String())
			if err := sleepCtx(ctx, backoff); err != nil {
				return err
			}
			if backoff < 5*time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = poll
		if !ok {
			if err := sleepCtx(ctx, poll); err != nil {
				return err
			}
			continue
		}

		result, execErr := w.Exec.Execute(ctx, lease.Task)
		req := CompleteRequest{Node: node, Task: lease.Task.ID, Token: lease.Token}
		if execErr != nil {
			if ctx.Err() != nil {
				// Dying mid-shard: don't report, let the lease expire and
				// the shard re-queue — the path the chaos smoke SIGKILLs.
				return ctx.Err()
			}
			req.Error = execErr.Error()
			log.Warn("task failed", "task", lease.Task.ID, "err", execErr)
		} else {
			req.Result = result
		}
		if err := w.complete(ctx, req); err != nil {
			switch {
			case errors.Is(err, ErrStaleLease):
				obs.Default().Counter("shard.worker_stale_completions").Add(1)
				log.Warn("completion rejected: lease expired before report", "task", lease.Task.ID)
			case errors.Is(err, ErrUnknownNode):
				node = ""
			case ctx.Err() != nil:
				return ctx.Err()
			default:
				log.Warn("complete failed", "task", lease.Task.ID, "err", err)
			}
			continue
		}
		if execErr == nil {
			obs.Default().Counter("shard.worker_tasks_done").Add(1)
		}
	}
	return ctx.Err()
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (w *Worker) register(ctx context.Context) (RegisterResponse, error) {
	var resp RegisterResponse
	err := w.post(ctx, "/v1/cluster/nodes", RegisterRequest{Name: w.Name, PeerAddr: w.PeerAddr}, &resp)
	return resp, err
}

func (w *Worker) lease(ctx context.Context, node string) (Lease, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Base+"/v1/cluster/lease",
		bytes.NewReader(mustJSON(LeaseRequest{Node: node})))
	if err != nil {
		return Lease{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := w.client().Do(req)
	if err != nil {
		return Lease{}, false, err
	}
	defer res.Body.Close()
	switch res.StatusCode {
	case http.StatusNoContent:
		io.Copy(io.Discard, res.Body)
		return Lease{}, false, nil
	case http.StatusOK:
		var l Lease
		if err := json.NewDecoder(res.Body).Decode(&l); err != nil {
			return Lease{}, false, fmt.Errorf("shard: decode lease: %w", err)
		}
		return l, true, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, res.Body)
		return Lease{}, false, ErrUnknownNode
	default:
		body, _ := io.ReadAll(io.LimitReader(res.Body, 512))
		return Lease{}, false, fmt.Errorf("shard: lease: %s: %s", res.Status, bytes.TrimSpace(body))
	}
}

func (w *Worker) complete(ctx context.Context, creq CompleteRequest) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Base+"/v1/cluster/complete",
		bytes.NewReader(mustJSON(creq)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := w.client().Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	switch res.StatusCode {
	case http.StatusOK:
		io.Copy(io.Discard, res.Body)
		return nil
	case http.StatusConflict:
		io.Copy(io.Discard, res.Body)
		return ErrStaleLease
	case http.StatusNotFound:
		io.Copy(io.Discard, res.Body)
		return ErrUnknownNode
	default:
		body, _ := io.ReadAll(io.LimitReader(res.Body, 512))
		return fmt.Errorf("shard: complete: %s: %s", res.Status, bytes.TrimSpace(body))
	}
}

func (w *Worker) post(ctx context.Context, path string, body, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Base+path, bytes.NewReader(mustJSON(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := w.client().Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		payload, _ := io.ReadAll(io.LimitReader(res.Body, 512))
		return fmt.Errorf("shard: %s: %s: %s", path, res.Status, bytes.TrimSpace(payload))
	}
	return json.NewDecoder(res.Body).Decode(out)
}

func mustJSON(v any) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(err) // wire types marshal by construction
	}
	return raw
}
