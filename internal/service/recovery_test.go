package service

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"stdcelltune/internal/service/cache"
	"stdcelltune/internal/service/chaos"
	"stdcelltune/internal/service/journal"
)

// crashCase is one chaos scenario: arm kind at point, fire on the
// (after+1)-th pass, crash the "process" mid-flight, then prove
// recovery.
type crashCase struct {
	name  string
	point string
	kind  chaos.Kind
	after int
}

// crashAndRecover is the recovery acceptance harness. Phase 1 runs a
// journaled manager into an armed crash and abandons it — the dead
// injector guarantees nothing durable happens after the crash moment,
// the in-process analogue of SIGKILL. Phase 2 reopens the same statedir
// and cachedir with a fresh manager and asserts the crash-safety
// contract:
//
//   - no accepted job is lost: every Submit that returned success is
//     either terminal in the journal or re-enqueued by recovery;
//   - recovered jobs finish, and their artifact bytes are identical to
//     the reference computation (idempotency through the cache);
//   - the journal itself recovers: torn tails truncate, the compacted
//     file replays cleanly, and after the recovered jobs finish a third
//     open finds nothing pending.
func crashAndRecover(t *testing.T, tc crashCase, corruptCache bool) {
	t.Helper()
	stateDir, cacheDir := t.TempDir(), t.TempDir()
	specs := []Spec{{Seed: 1}, {Seed: 2}, {Seed: 3}}
	reference := make(map[string][]byte) // digest -> result.json bytes
	for _, s := range specs {
		reference[s.Normalized().Digest()] = fakeBlobs(s.Normalized())["result.json"]
	}

	// --- Phase 1: run into the crash. ---
	inj := chaos.New(int64(len(tc.point)) + int64(tc.after))
	inj.Arm(tc.point, tc.kind, tc.after)
	restore := chaos.Activate(inj)

	jnl1, recs, err := journal.Open(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh statedir replayed %d records", len(recs))
	}
	store1, err := cache.New(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewManager(store1, ManagerOptions{
		Workers: 1, Journal: jnl1,
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) { return fakeBlobs(s), nil },
	})
	accepted := make(map[string]string) // job id -> digest
	for _, s := range specs {
		j, err := m1.Submit(s, "")
		if err != nil {
			continue // the crash (or its aftermath) refused this one: client saw the error
		}
		accepted[j.ID] = j.Digest
	}
	// Run the doomed manager to quiescence, then abandon it. The expired
	// context hard-cancels anything still in flight, like the scheduler
	// disappearing under a real SIGKILL.
	deadCtx, cancel := context.WithCancel(context.Background())
	cancel()
	m1.Drain(deadCtx)
	restore() // the "process" is gone; chaos with it
	jnl1.Close()

	if corruptCache {
		// Flip a byte in every persisted artifact blob: phase 2's load
		// must drop the corrupt entries and recompute.
		filepath.Walk(cacheDir, func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() || filepath.Base(path) == "index.json" {
				return err
			}
			data, err := os.ReadFile(path)
			if err != nil || len(data) == 0 {
				return err
			}
			data[len(data)/2] ^= 0x20
			return os.WriteFile(path, data, 0o644)
		})
	}

	// --- Phase 2: a fresh daemon over the same directories. ---
	jnl2, recs2, err := journal.Open(stateDir)
	if err != nil {
		t.Fatalf("reopen journal after %s: %v", tc.name, err)
	}
	defer jnl2.Close()

	// No accepted job lost: every acceptance is either terminal in the
	// journal or pending for recovery.
	known := make(map[string]journal.State)
	for _, r := range recs2 {
		known[r.Job] = r.State
	}
	pending := journal.Pending(recs2)
	pendingSet := make(map[string]bool, len(pending))
	for _, r := range pending {
		pendingSet[r.Job] = true
	}
	for id := range accepted {
		st, ok := known[id]
		if !ok {
			t.Fatalf("%s: accepted job %s vanished from the journal", tc.name, id)
		}
		if !st.Terminal() && !pendingSet[id] {
			t.Fatalf("%s: job %s is %s but not pending for recovery", tc.name, id, st)
		}
	}

	store2, err := cache.New(cacheDir)
	if err != nil {
		t.Fatalf("reopen cache: %v", err)
	}
	m2 := NewManager(store2, ManagerOptions{
		Workers: 2, Journal: jnl2, Recovered: recs2,
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) { return fakeBlobs(s), nil },
	})
	if m2.Recovered() != len(pending) {
		t.Fatalf("%s: recovered %d jobs, journal had %d pending", tc.name, m2.Recovered(), len(pending))
	}
	for _, r := range pending {
		j, ok := m2.Job(r.Job)
		if !ok {
			t.Fatalf("%s: pending job %s not re-registered", tc.name, r.Job)
		}
		if !j.Recovered {
			t.Fatalf("%s: job %s not marked recovered", tc.name, r.Job)
		}
		waitDone(t, j)
		if v := j.View(); v.Status != StatusDone {
			t.Fatalf("%s: recovered job %s ended %s: %s", tc.name, r.Job, v.Status, v.Error)
		}
	}

	// Byte identity: whatever survived or recomputed, the artifacts for
	// every accepted digest match the reference computation exactly.
	for id, dig := range accepted {
		want, ok := reference[dig]
		if !ok {
			t.Fatalf("%s: job %s has unknown digest %s", tc.name, id, dig)
		}
		// Terminal-before-crash jobs may have nothing cached (their bytes
		// were served before the crash); only pending ones must converge.
		if !pendingSet[id] {
			continue
		}
		e, ok := store2.Lookup(dig)
		if !ok {
			t.Fatalf("%s: no cache entry for recovered digest %s", tc.name, dig)
		}
		a := e.Artifact("result.json")
		if a == nil || !bytes.Equal(a.Bytes(), want) {
			t.Fatalf("%s: recovered bytes for %s diverge from reference", tc.name, dig)
		}
	}

	// Clean shutdown of the recovered daemon, then a third open: nothing
	// left pending, the journal replays end to end.
	drainCtx, cancel3 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel3()
	if err := m2.Drain(drainCtx); err != nil {
		t.Fatalf("%s: recovered daemon did not drain: %v", tc.name, err)
	}
	jnl2.Close()
	jnl3, recs3, err := journal.Open(stateDir)
	if err != nil {
		t.Fatalf("%s: third open: %v", tc.name, err)
	}
	jnl3.Close()
	if left := journal.Pending(recs3); len(left) != 0 {
		t.Fatalf("%s: %d jobs still pending after full recovery: %+v", tc.name, len(left), left)
	}
}

// TestCrashPointRecovery walks every instrumented crash moment — journal
// accept/running/terminal writes and syncs, cache persistence — in both
// hard-crash and torn-write flavors.
func TestCrashPointRecovery(t *testing.T) {
	cases := []crashCase{
		{"accept-pre-write", "journal.accepted.pre-write", chaos.Crash, 1},
		{"accept-torn", "journal.accepted.write", chaos.Torn, 1},
		{"accept-pre-sync", "journal.accepted.pre-sync", chaos.Crash, 1},
		{"running-pre-write", "journal.running.pre-write", chaos.Crash, 1},
		{"running-torn", "journal.running.write", chaos.Torn, 1},
		{"done-pre-write", "journal.done.pre-write", chaos.Crash, 0},
		{"done-torn", "journal.done.write", chaos.Torn, 1},
		{"done-pre-sync", "journal.done.pre-sync", chaos.Crash, 2},
		{"cache-pre-write", "cache.persist.pre-write", chaos.Crash, 0},
		{"cache-mid-write", "cache.persist.write", chaos.Crash, 1},
		{"cache-pre-rename", "cache.persist.pre-rename", chaos.Crash, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { crashAndRecover(t, tc, false) })
	}
}

// TestCorruptCacheEntryRecovery: crash before the terminal record, then
// rot the persisted cache bytes on disk. The reopened store must drop
// the corrupt entries (counted) and the recovered jobs recompute to the
// exact reference bytes anyway.
func TestCorruptCacheEntryRecovery(t *testing.T) {
	crashAndRecover(t, crashCase{"corrupt-cache", "journal.done.pre-write", chaos.Crash, 0}, true)
}

// TestRandomizedCrashRecovery fuzzes the schedule: a seeded generator
// picks crash points, flavors, and firing offsets; every combination
// must satisfy the same recovery contract. Deterministic per seed, so a
// failure names its reproduction.
func TestRandomizedCrashRecovery(t *testing.T) {
	crashPoints := []string{
		"journal.accepted.pre-write", "journal.accepted.write", "journal.accepted.pre-sync",
		"journal.running.pre-write", "journal.running.write",
		"journal.done.pre-write", "journal.done.write", "journal.done.pre-sync",
		"cache.persist.pre-write", "cache.persist.write", "cache.persist.pre-rename",
	}
	// A torn write only means something where bytes are framed: the
	// journal's write sites.
	tornPoints := []string{"journal.accepted.write", "journal.running.write", "journal.done.write"}
	n := 12
	if testing.Short() {
		n = 4
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		rng := rand.New(rand.NewSource(seed))
		tc := crashCase{kind: chaos.Crash, after: rng.Intn(3)}
		if rng.Intn(2) == 1 {
			tc.kind = chaos.Torn
			tc.point = tornPoints[rng.Intn(len(tornPoints))]
		} else {
			tc.point = crashPoints[rng.Intn(len(crashPoints))]
		}
		tc.name = fmt.Sprintf("seed%d-%s-%s-after%d", seed, tc.point, tc.kind, tc.after)
		t.Run(tc.name, func(t *testing.T) { crashAndRecover(t, tc, false) })
	}
}
