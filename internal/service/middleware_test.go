package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stdcelltune/internal/obs"
	"stdcelltune/internal/service/cache"
)

func TestValidRequestID(t *testing.T) {
	for id, want := range map[string]bool{
		"abc-123.DEF_x": true,
		"a":             true,
		"":              false,
		"has space":     false,
		"inject\nlog":   false,
		`q"uote`:        false,
		strings.Repeat("x", 64): true,
		strings.Repeat("x", 65): false,
	} {
		if got := validRequestID(id); got != want {
			t.Errorf("validRequestID(%q) = %v, want %v", id, got, want)
		}
	}
	if a, b := newRequestID(), newRequestID(); a == b || !validRequestID(a) {
		t.Errorf("minted ids %q, %q: want distinct and valid", a, b)
	}
}

// TestRequestIDCorrelation is the acceptance test of the correlation
// chain: one client-supplied X-Request-ID must surface on (1) the HTTP
// response header, (2) the job document, (3) the structured accept log
// line and (4) the root span of the job's Chrome trace.
func TestRequestIDCorrelation(t *testing.T) {
	var logBuf bytes.Buffer
	old := obs.Log()
	obs.SetLog(slog.New(slog.NewTextHandler(&logBuf, nil)))
	defer obs.SetLog(old)

	store, _ := cache.New("")
	m := NewManager(store, ManagerOptions{
		Trace: true,
		Run:   func(_ context.Context, s Spec) (map[string][]byte, error) { return fakeBlobs(s), nil },
	})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	const reqID = "corr-test-4711"
	body, _ := json.Marshal(Spec{Design: "mcu-small", Instances: 3})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Errorf("response header X-Request-ID = %q, want %q", got, reqID)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.RequestID != reqID {
		t.Errorf("job document request_id = %q, want %q", v.RequestID, reqID)
	}

	j, ok := m.Job(v.ID)
	if !ok {
		t.Fatalf("job %s not registered", v.ID)
	}
	waitDone(t, j)

	if !strings.Contains(logBuf.String(), "request_id="+reqID) {
		t.Errorf("accept log line lacks request_id=%s:\n%s", reqID, logBuf.String())
	}

	trace := getBytes(t, ts.URL+"/v1/jobs/"+v.ID+"/trace")
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatalf("trace endpoint not Chrome trace JSON: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "job" {
			found = true
			if ev.Args["request_id"] != reqID {
				t.Errorf("root span request_id = %v, want %q", ev.Args["request_id"], reqID)
			}
		}
	}
	if !found {
		t.Errorf("no root job span in trace: %s", trace)
	}

	// A malformed client id is replaced by a minted one, not echoed.
	req2, _ := http.NewRequest("GET", ts.URL+"/v1/jobs", nil)
	req2.Header.Set("X-Request-ID", "evil header value")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got == "" || strings.Contains(got, "evil") {
		t.Errorf("malformed id echoed back: %q", got)
	}
}

// TestRouteLabelCardinality: the RED metric families must label by the
// static route pattern, never by request data — a burst of distinct job
// ids must not grow any family, and no id may leak into the exposition.
func TestRouteLabelCardinality(t *testing.T) {
	store, _ := cache.New("")
	m := NewManager(store, ManagerOptions{
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) { return fakeBlobs(s), nil },
	})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	rng := rand.New(rand.NewSource(99))
	randomID := func() string { return fmt.Sprintf("job-%d-%d", rng.Int63(), rng.Int63()) }

	// Prime every label combination this test can produce, then measure.
	// The id-bearing v2 routes ride along: {id}, {digest} and {name} must
	// label by pattern exactly like the v1 originals.
	hit := func(id string) {
		for _, probe := range []struct{ method, path string }{
			{"GET", "/v1/jobs/" + id},
			{"GET", "/v2/jobs/" + id},
			{"GET", "/v2/libraries/sha256:" + id},
			{"GET", "/v2/libraries/sha256:" + id + "/artifacts/" + id},
			{"POST", "/v2/libraries/sha256:" + id + "/query"},
		} {
			req, err := http.NewRequest(probe.method, ts.URL+probe.path, strings.NewReader("{}"))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
	}
	ids := []string{randomID()}
	hit(ids[0])
	reqBefore, flightBefore, latBefore := httpRequests.Len(), httpInFlight.Len(), httpLatency.Len()

	for i := 0; i < 100; i++ {
		id := randomID()
		ids = append(ids, id)
		hit(id)
	}
	if n := httpRequests.Len(); n != reqBefore {
		t.Errorf("http_requests_total grew %d -> %d series under random job ids", reqBefore, n)
	}
	if n := httpInFlight.Len(); n != flightBefore {
		t.Errorf("http_in_flight_requests grew %d -> %d series", flightBefore, n)
	}
	if n := httpLatency.Len(); n != latBefore {
		t.Errorf("http_request_duration_seconds grew %d -> %d series", latBefore, n)
	}

	exposition := string(getBytes(t, ts.URL+"/metrics"))
	for _, id := range ids {
		if strings.Contains(exposition, id) {
			t.Fatalf("raw job id %q leaked into /metrics", id)
		}
	}
	if !strings.Contains(exposition, `http_requests_total{route="GET /v1/jobs/{id}",code="4xx"}`) {
		t.Errorf("pattern-labeled 404 series missing from exposition")
	}
	for _, route := range []string{
		"GET /v2/jobs/{id}",
		"GET /v2/libraries/{digest}",
		"GET /v2/libraries/{digest}/artifacts/{name}",
		"POST /v2/libraries/{digest}/query",
	} {
		if !strings.Contains(exposition, fmt.Sprintf(`http_requests_total{route=%q,code="4xx"}`, route)) {
			t.Errorf("pattern-labeled series for %s missing from exposition", route)
		}
	}
}

// TestMetricsEndpoint: GET /metrics must be parseable format 0.0.4 and
// carry the per-route RED series after traffic.
func TestMetricsEndpoint(t *testing.T) {
	store, _ := cache.New("")
	m := NewManager(store, ManagerOptions{
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) { return fakeBlobs(s), nil },
	})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	v := postJob(t, ts, Spec{Design: "mcu-small", Instances: 2, Seed: 7})
	j, _ := m.Job(v.ID)
	waitDone(t, j)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type %q lacks exposition version", ct)
	}
	samples, types, err := obs.ParsePrometheusText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	if types["http_requests_total"] != "counter" || types["http_request_duration_seconds"] != "histogram" {
		t.Errorf("missing TYPE lines: %v", types)
	}
	var posts float64
	var infBucket bool
	for _, s := range samples {
		if s.Name == "http_requests_total" && s.Labels["route"] == "POST /v1/jobs" && s.Labels["code"] == "2xx" {
			posts += s.Value
		}
		if s.Name == "http_request_duration_seconds_bucket" && s.Labels["le"] == "+Inf" {
			infBucket = true
		}
	}
	if posts < 1 {
		t.Errorf("no POST /v1/jobs 2xx samples in exposition")
	}
	if !infBucket {
		t.Errorf("no +Inf duration bucket in exposition")
	}
}

// TestSSEKeepAlive: an idle event stream must carry ": ping" comment
// frames, and a consumer that sat through them still receives the
// terminal done event.
func TestSSEKeepAlive(t *testing.T) {
	oldKA := sseKeepAlive
	sseKeepAlive = 20 * time.Millisecond
	defer func() { sseKeepAlive = oldKA }()

	release := make(chan struct{})
	store, _ := cache.New("")
	m := NewManager(store, ManagerOptions{
		Run: func(ctx context.Context, s Spec) (map[string][]byte, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return fakeBlobs(s), nil
		},
	})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	v := postJob(t, ts, Spec{Design: "mcu-small", Instances: 3})
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type result struct {
		pings   int
		gotDone bool
	}
	resCh := make(chan result, 1)
	go func() {
		var res result
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, ": ping") {
				res.pings++
				if res.pings == 3 && res.gotDone == false {
					close(release) // job was idle through 3 keep-alives; let it finish
				}
			}
			if line == "event: done" {
				res.gotDone = true
				break
			}
		}
		resCh <- res
	}()

	select {
	case res := <-resCh:
		if res.pings < 3 {
			t.Errorf("saw %d keep-alive pings, want >= 3", res.pings)
		}
		if !res.gotDone {
			t.Error("stream ended without a done event")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream did not deliver pings + done in time")
	}
}

// TestRetryAfterClamped: sub-second admission hints must surface as
// Retry-After >= 1 (whole seconds, RFC 9110), never 0.
func TestRetryAfterClamped(t *testing.T) {
	for _, tc := range []struct {
		after time.Duration
		want  string
	}{
		{0, "1"},
		{5 * time.Millisecond, "1"},
		{time.Second, "1"},
		{2500 * time.Millisecond, "3"},
	} {
		rr := httptest.NewRecorder()
		writeError(rr, withRetryAfter(ErrRateLimited, tc.after))
		if rr.Code != http.StatusTooManyRequests {
			t.Errorf("after=%s: status %d, want 429", tc.after, rr.Code)
		}
		if got := rr.Header().Get("Retry-After"); got != tc.want {
			t.Errorf("after=%s: Retry-After %q, want %q", tc.after, got, tc.want)
		}
	}
}
