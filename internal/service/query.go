package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"stdcelltune/internal/liberty"
	"stdcelltune/internal/netlist"
	"stdcelltune/internal/query"
	"stdcelltune/internal/restrict"
	"stdcelltune/internal/service/cache"
	"stdcelltune/internal/sta"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stdcell"
)

// ErrNotQueryable marks a cached library whose artifact set predates
// the query layer (no netlist.v) or is otherwise incomplete — the
// entry serves artifacts fine but cannot back a query store. Mapped to
// 409: the resource exists, the request is well-formed, they just
// don't compose.
var ErrNotQueryable = errors.New("library artifact set is not queryable")

// ArtifactQueryResult is the single artifact of a cached query-result
// entry. Entries carrying exactly this artifact are query results, not
// libraries; library listings filter on ArtifactSpec instead.
const ArtifactQueryResult = "result.json"

// queryStoreCacheSize bounds the number of decoded query stores kept
// hot on the manager. A store is tens of MB of columns plus the parsed
// netlist; bounding the set makes memory proportional to working set,
// not cache size. Eviction is FIFO — the workload is "analyst pounds
// one or two libraries", not a scan.
const queryStoreCacheSize = 4

// queryStores is the manager's bounded digest→store cache.
type queryStores struct {
	mu     sync.Mutex
	stores map[string]*query.Store
	order  []string
	// building single-flights store construction per digest: building a
	// store runs a full STA pass, and concurrent first queries against
	// one library must not each pay it.
	building map[string]*storeFlight
}

type storeFlight struct {
	done  chan struct{}
	store *query.Store
	err   error
}

func newQueryStores() *queryStores {
	return &queryStores{stores: make(map[string]*query.Store), building: make(map[string]*storeFlight)}
}

// get returns the cached store or builds it via build, deduplicating
// concurrent builds of the same digest.
func (qs *queryStores) get(dig string, build func() (*query.Store, error)) (*query.Store, error) {
	qs.mu.Lock()
	if s, ok := qs.stores[dig]; ok {
		qs.mu.Unlock()
		return s, nil
	}
	if fl, ok := qs.building[dig]; ok {
		qs.mu.Unlock()
		<-fl.done
		return fl.store, fl.err
	}
	fl := &storeFlight{done: make(chan struct{})}
	qs.building[dig] = fl
	qs.mu.Unlock()

	fl.store, fl.err = build()

	qs.mu.Lock()
	if fl.err == nil {
		qs.stores[dig] = fl.store
		qs.order = append(qs.order, dig)
		for len(qs.order) > queryStoreCacheSize {
			evict := qs.order[0]
			qs.order = qs.order[1:]
			delete(qs.stores, evict)
		}
	}
	delete(qs.building, dig)
	qs.mu.Unlock()
	close(fl.done)
	return fl.store, fl.err
}

// QueryStore returns the columnar query store of a cached library,
// building (and caching) it from the artifact set on first use.
func (m *Manager) QueryStore(dig string) (*query.Store, error) {
	e, ok := m.store.Peek(dig)
	if !ok {
		return nil, fmt.Errorf("%w: no such library %s", ErrNotFound, dig)
	}
	return m.qstores.get(dig, func() (*query.Store, error) {
		return BuildQueryStore(e)
	})
}

// BuildQueryStore reconstructs the queryable image of a pipeline run
// from its artifact set alone: the statistical library from the
// Liberty text, the tuned windows from windows.json, the synthesized
// design from netlist.v, and the timing context from spec.json. That
// the store needs nothing but artifacts is what lets any node — or a
// post-mortem analyst with a cache directory — answer queries without
// rerunning anything.
func BuildQueryStore(e *cache.Entry) (*query.Store, error) {
	specArt := e.Artifact(ArtifactSpec)
	if specArt == nil {
		return nil, fmt.Errorf("%w: %s has no %s", ErrNotQueryable, e.Digest, ArtifactSpec)
	}
	var spec Spec
	if err := json.Unmarshal(specArt.Bytes(), &spec); err != nil {
		return nil, fmt.Errorf("%w: decode %s: %v", ErrNotQueryable, ArtifactSpec, err)
	}
	spec = spec.Normalized()

	statArt := e.Artifact(ArtifactStatLib)
	if statArt == nil {
		return nil, fmt.Errorf("%w: %s has no %s", ErrNotQueryable, e.Digest, ArtifactStatLib)
	}
	lib, err := liberty.Parse(string(statArt.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("%w: parse %s: %v", ErrNotQueryable, ArtifactStatLib, err)
	}
	stat, err := statlib.FromLiberty(lib)
	if err != nil {
		return nil, fmt.Errorf("%w: rebuild statistical library: %v", ErrNotQueryable, err)
	}

	var windows *restrict.Set
	if winArt := e.Artifact(ArtifactWindows); winArt != nil {
		var wd windowsDoc
		if err := json.Unmarshal(winArt.Bytes(), &wd); err != nil {
			return nil, fmt.Errorf("%w: decode %s: %v", ErrNotQueryable, ArtifactWindows, err)
		}
		windows = restrict.NewSet(wd.Name)
		for _, w := range wd.Windows {
			windows.Put(w.Cell, w.Pin, restrict.Window{
				MinLoad: w.MinLoad, MaxLoad: w.MaxLoad,
				MinSlew: w.MinSlew, MaxSlew: w.MaxSlew,
			})
		}
	}

	src := query.Source{
		Library: e.Digest,
		Stat:    stat,
		Windows: windows,
		STA:     sta.DefaultConfig(spec.ClockNS),
		Rho:     spec.Rho,
	}

	// Entries sealed before the query layer existed have no netlist.v;
	// they still serve the library-side tables, but design tables and
	// what-ifs need the netlist.
	if nlArt := e.Artifact(ArtifactNetlist); nlArt != nil {
		corner, ok := cornerFromSlug(spec.Corner)
		if !ok {
			return nil, fmt.Errorf("%w: unknown corner %q", ErrNotQueryable, spec.Corner)
		}
		cat := stdcell.NewCatalogue(corner)
		nl, err := netlist.ParseVerilog(string(nlArt.Bytes()), cat)
		if err != nil {
			return nil, fmt.Errorf("%w: parse %s: %v", ErrNotQueryable, ArtifactNetlist, err)
		}
		src.Netlist = nl
	}

	if synthArt := e.Artifact(ArtifactSynthesis); synthArt != nil {
		var sd synthDoc
		if err := json.Unmarshal(synthArt.Bytes(), &sd); err != nil {
			return nil, fmt.Errorf("%w: decode %s: %v", ErrNotQueryable, ArtifactSynthesis, err)
		}
		src.Synth = []query.SynthUnit{{
			Unit:               spec.Digest(),
			Design:             sd.Design,
			ClockNS:            sd.ClockNS,
			Met:                sd.Met,
			AreaUM2:            sd.Area,
			WNS:                sd.WNS,
			TNS:                sd.TNS,
			Iterations:         sd.Iterations,
			Buffered:           sd.Buffered,
			Upsized:            sd.Upsized,
			Downsized:          sd.Downsized,
			FullAnalyses:       sd.FullAnalyses,
			IncrementalUpdates: sd.IncrementalUpdates,
		}}
	}

	s, err := query.Build(src)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotQueryable, err)
	}
	return s, nil
}

// queryResultDoc is the paginated wire form of a table-query result:
// the cached full result's fields plus the serve-time pagination
// window.
type queryResultDoc struct {
	Schema     string      `json:"schema"`
	Library    string      `json:"library"`
	From       string      `json:"from"`
	Columns    []query.Col `json:"columns"`
	Rows       [][]any     `json:"rows"`
	TotalRows  int         `json:"total_rows"`
	NextCursor string      `json:"next_cursor,omitempty"`
}

// ExecuteQuery runs a query document against a cached library. The
// full (unpaginated) result is cached in the artifact store under the
// digest of (library, normalized query) — limit and cursor never reach
// the cache key, they slice the cached result at serve time. The
// returned outcome is the cache verdict: "hit", "miss", "shared" or
// "peer".
func (m *Manager) ExecuteQuery(ctx context.Context, dig string, raw []byte) (any, string, error) {
	if _, ok := m.store.Peek(dig); !ok {
		return nil, "", fmt.Errorf("%w: no such library %s", ErrNotFound, dig)
	}
	q, err := query.Parse(raw)
	if err != nil {
		return nil, "", err
	}
	resultDig, err := q.Digest(dig)
	if err != nil {
		return nil, "", err
	}
	entry, outcome, err := m.store.GetOrCompute(ctx, resultDig, func(context.Context) (map[string][]byte, error) {
		s, err := m.QueryStore(dig)
		if err != nil {
			return nil, err
		}
		var doc any
		if q.WhatIf != nil {
			doc, err = s.EvalWhatIf(q.WhatIf)
		} else {
			doc, err = s.Execute(q)
		}
		if err != nil {
			return nil, err
		}
		body, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return nil, err
		}
		return map[string][]byte{ArtifactQueryResult: append(body, '\n')}, nil
	})
	if err != nil {
		return nil, outcome, err
	}
	body := entry.Artifact(ArtifactQueryResult).Bytes()

	if q.WhatIf != nil {
		var wr query.WhatIfResult
		if err := json.Unmarshal(body, &wr); err != nil {
			return nil, outcome, fmt.Errorf("decode cached what-if result: %w", err)
		}
		return &wr, outcome, nil
	}
	var full query.Result
	if err := json.Unmarshal(body, &full); err != nil {
		return nil, outcome, fmt.Errorf("decode cached query result: %w", err)
	}
	page, next, err := query.Page(&full, q.Limit, q.Cursor)
	if err != nil {
		return nil, outcome, err
	}
	return &queryResultDoc{
		Schema:     page.Schema,
		Library:    page.Library,
		From:       page.From,
		Columns:    page.Columns,
		Rows:       page.Rows,
		TotalRows:  page.Total,
		NextCursor: next,
	}, outcome, nil
}

// Libraries lists the digests of cached entries that are libraries
// (artifact sets with a spec.json) — query-result entries share the
// cache but are not libraries.
func (m *Manager) Libraries() []string {
	out := []string{}
	for _, dig := range m.store.Digests() {
		if e, ok := m.store.Peek(dig); ok && e.Artifact(ArtifactSpec) != nil {
			out = append(out, dig)
		}
	}
	return out
}
