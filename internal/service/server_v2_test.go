package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stdcelltune/internal/obs"
	"stdcelltune/internal/query"
	"stdcelltune/internal/service/cache"
	"stdcelltune/internal/sta"
)

// v2Env is the envelope shape every failing /v2 route must return.
type v2Env struct {
	Error struct {
		Code      string `json:"code"`
		Message   string `json:"message"`
		RequestID string `json:"request_id"`
	} `json:"error"`
}

func doReq(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestV2ErrorEnvelope: every failing api/2 route answers with the one
// envelope — {"error": {code, message, request_id}} — with the code
// slug matching the failure class and the request id matching the
// response header's.
func TestV2ErrorEnvelope(t *testing.T) {
	store, _ := cache.New("")
	m := NewManager(store, ManagerOptions{
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) { return fakeBlobs(s), nil },
	})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	cases := []struct {
		method, path string
		body         []byte
		status       int
		code         string
	}{
		{"GET", "/v2/jobs/nope", nil, 404, "not_found"},
		{"DELETE", "/v2/jobs/nope", nil, 404, "not_found"},
		{"GET", "/v2/jobs/nope/events", nil, 404, "not_found"},
		{"GET", "/v2/jobs/nope/trace", nil, 404, "not_found"},
		{"GET", "/v2/libraries/sha256:nope", nil, 404, "not_found"},
		{"GET", "/v2/libraries/sha256:nope/artifacts/x", nil, 404, "not_found"},
		{"POST", "/v2/libraries/sha256:nope/query", []byte(`{"schema":"stdcelltune-query/1","from":"cells"}`), 404, "not_found"},
		{"POST", "/v2/jobs", []byte(`{"unknown_field":1}`), 400, "bad_spec"},
		{"POST", "/v2/jobs", []byte(`not json`), 400, "bad_spec"},
		{"GET", "/v2/jobs?limit=banana", nil, 400, "bad_query"},
		{"GET", "/v2/jobs?cursor=bogus", nil, 400, "bad_query"},
	}
	for _, tc := range cases {
		resp, data := doReq(t, tc.method, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s %s: status %d, want %d (%s)", tc.method, tc.path, resp.StatusCode, tc.status, data)
			continue
		}
		var env v2Env
		if err := json.Unmarshal(data, &env); err != nil {
			t.Errorf("%s %s: body not an error envelope: %v in %s", tc.method, tc.path, err, data)
			continue
		}
		if env.Error.Code != tc.code {
			t.Errorf("%s %s: code %q, want %q", tc.method, tc.path, env.Error.Code, tc.code)
		}
		if env.Error.Message == "" {
			t.Errorf("%s %s: empty message", tc.method, tc.path)
		}
		if hdr := resp.Header.Get("X-Request-ID"); env.Error.RequestID != hdr || hdr == "" {
			t.Errorf("%s %s: envelope request_id %q != header %q", tc.method, tc.path, env.Error.RequestID, hdr)
		}
	}
}

// TestV2JobLifecycle: submit, fetch, cancel through the v2 prefix.
func TestV2JobLifecycle(t *testing.T) {
	store, _ := cache.New("")
	m := NewManager(store, ManagerOptions{
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) { return fakeBlobs(s), nil },
	})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	body, _ := json.Marshal(Spec{Design: "mcu-small", Instances: 3, Seed: 1})
	resp, data := doReq(t, "POST", ts.URL+"/v2/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v2/jobs: %d %s", resp.StatusCode, data)
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	j, ok := m.Job(v.ID)
	if !ok {
		t.Fatalf("job %s not registered", v.ID)
	}
	waitDone(t, j)

	resp, data = doReq(t, "GET", ts.URL+"/v2/jobs/"+v.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v2/jobs/{id}: %d", resp.StatusCode)
	}
	var got JobView
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone || got.ID != v.ID {
		t.Fatalf("job view %+v", got)
	}
	if resp, _ := doReq(t, "DELETE", ts.URL+"/v2/jobs/"+v.ID, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE /v2/jobs/{id}: %d", resp.StatusCode)
	}
}

// TestV2JobsPagination: the jobs list pages by opaque cursor in accept
// order; walking pages yields every job exactly once; the terminal page
// has no next_cursor.
func TestV2JobsPagination(t *testing.T) {
	store, _ := cache.New("")
	m := NewManager(store, ManagerOptions{
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) { return fakeBlobs(s), nil },
	})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	var want []string
	for i := 0; i < 7; i++ {
		j, err := m.Submit(Spec{Design: "mcu-small", Instances: 2, Seed: int64(i + 1)}, "")
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, j.ID)
		waitDone(t, j)
	}

	var got []string
	cursor := ""
	pages := 0
	for {
		url := ts.URL + "/v2/jobs?limit=3"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		resp, data := doReq(t, "GET", url, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v2/jobs: %d %s", resp.StatusCode, data)
		}
		var page struct {
			Jobs       []JobView `json:"jobs"`
			NextCursor string    `json:"next_cursor"`
		}
		if err := json.Unmarshal(data, &page); err != nil {
			t.Fatal(err)
		}
		if len(page.Jobs) > 3 {
			t.Fatalf("page of %d jobs, limit was 3", len(page.Jobs))
		}
		for _, v := range page.Jobs {
			got = append(got, v.ID)
		}
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
		if pages > 10 {
			t.Fatal("cursor never terminated")
		}
	}
	if pages != 3 {
		t.Errorf("walked %d pages of limit 3 over 7 jobs, want 3", pages)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("paged ids %v != accept order %v", got, want)
	}
}

// queryLib runs the real pipeline once over HTTP and returns the
// library digest — the fixture for the query-endpoint tests.
func queryLib(t *testing.T, ts *httptest.Server, m *Manager, spec Spec) string {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, data := doReq(t, "POST", ts.URL+"/v2/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v2/jobs: %d %s", resp.StatusCode, data)
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	j, ok := m.Job(v.ID)
	if !ok {
		t.Fatalf("job %s not registered", v.ID)
	}
	select {
	case <-j.Done():
	case <-t.Context().Done():
		t.Fatal("test deadline while running pipeline")
	}
	done := j.View()
	if done.Status != StatusDone {
		t.Fatalf("pipeline job failed: %s", done.Error)
	}
	return done.Digest
}

func postQuery(t *testing.T, ts *httptest.Server, dig, doc string) (*http.Response, []byte) {
	t.Helper()
	return doReq(t, "POST", ts.URL+"/v2/libraries/"+dig+"/query", []byte(doc))
}

// TestV2QueryEndToEnd is the acceptance test of the tentpole over HTTP:
// a real pipeline run becomes a queryable library; table queries,
// pagination, and what-if substitution all answer through
// POST /v2/libraries/{digest}/query; results are cached by
// (library, normalized query) with byte-identical warm hits; and the
// what-if runs incrementally — zero re-synthesis, one full STA pass.
func TestV2QueryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline over HTTP")
	}
	store, _ := cache.New("")
	m := NewManager(store, ManagerOptions{})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	dig := queryLib(t, ts, m, smallSpec)

	// The library lists under /v2/libraries and serves an artifact index.
	var libs struct {
		Libraries []string `json:"libraries"`
	}
	if err := json.Unmarshal(getBytes(t, ts.URL+"/v2/libraries"), &libs); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(libs.Libraries) != fmt.Sprintf("[%s]", dig) {
		t.Fatalf("libraries %v, want [%s]", libs.Libraries, dig)
	}
	var index struct {
		Digest    string         `json:"digest"`
		Artifacts []ArtifactView `json:"artifacts"`
	}
	if err := json.Unmarshal(getBytes(t, ts.URL+"/v2/libraries/"+dig), &index); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, a := range index.Artifacts {
		names[a.Name] = true
	}
	if !names[ArtifactNetlist] || !names[ArtifactSpec] || !names[ArtifactStatLib] {
		t.Fatalf("artifact index lacks query-layer inputs: %+v", index.Artifacts)
	}

	// Cold table query: group instances by family.
	const groupQ = `{"schema":"stdcelltune-query/1","from":"instances","group_by":["family"],"aggregate":[{"op":"count"},{"op":"sum","col":"area_um2"}]}`
	resp, cold := postQuery(t, ts, dig, groupQ)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold query: %d %s", resp.StatusCode, cold)
	}
	if oc := resp.Header.Get("X-Query-Cache"); oc != "miss" {
		t.Fatalf("cold query X-Query-Cache %q, want miss", oc)
	}
	var res struct {
		Schema    string      `json:"schema"`
		Library   string      `json:"library"`
		Columns   []query.Col `json:"columns"`
		Rows      [][]any     `json:"rows"`
		TotalRows int         `json:"total_rows"`
	}
	if err := json.Unmarshal(cold, &res); err != nil {
		t.Fatal(err)
	}
	if res.Schema != query.SchemaResult || res.Library != dig || len(res.Rows) == 0 {
		t.Fatalf("query result %s", cold)
	}

	// Satellite: warm hit is byte-identical and reported as a hit.
	resp, warm := postQuery(t, ts, dig, groupQ)
	if oc := resp.Header.Get("X-Query-Cache"); oc != "hit" {
		t.Fatalf("warm query X-Query-Cache %q, want hit", oc)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm query bytes differ from cold:\n%s\nvs\n%s", cold, warm)
	}

	// Satellite: a semantically identical document — different key
	// order, whitespace, operator case — normalizes to the same cache
	// key and hits.
	variant := `{
		"aggregate": [ {"op":"COUNT"}, {"col":"area_um2","op":"Sum"} ],
		"group_by":  [ "family" ],
		"from": "instances",
		"schema": "stdcelltune-query/1"
	}`
	resp, varBody := postQuery(t, ts, dig, variant)
	if oc := resp.Header.Get("X-Query-Cache"); oc != "hit" {
		t.Fatalf("variant query X-Query-Cache %q, want hit", oc)
	}
	if !bytes.Equal(cold, varBody) {
		t.Fatal("normalized variant served different bytes")
	}

	// Pagination slices the cached result at serve time: pages
	// concatenate to the full row set, and limit/cursor never change the
	// cache key (every page is a hit).
	full := res.Rows
	var paged [][]any
	cursor := ""
	for {
		doc := fmt.Sprintf(`{"schema":"stdcelltune-query/1","from":"instances","group_by":["family"],"aggregate":[{"op":"count"},{"op":"sum","col":"area_um2"}],"limit":1,"cursor":%q}`, cursor)
		resp, data := postQuery(t, ts, dig, doc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("paged query: %d %s", resp.StatusCode, data)
		}
		if oc := resp.Header.Get("X-Query-Cache"); oc != "hit" {
			t.Fatalf("paged query X-Query-Cache %q, want hit (pagination must not perturb the cache key)", oc)
		}
		var page struct {
			Rows       [][]any `json:"rows"`
			TotalRows  int     `json:"total_rows"`
			NextCursor string  `json:"next_cursor"`
		}
		if err := json.Unmarshal(data, &page); err != nil {
			t.Fatal(err)
		}
		if page.TotalRows != len(full) {
			t.Fatalf("page total_rows %d, want %d", page.TotalRows, len(full))
		}
		paged = append(paged, page.Rows...)
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if fmt.Sprint(paged) != fmt.Sprint(full) {
		t.Fatalf("paged rows %v != full rows %v", paged, full)
	}

	// What-if substitution over HTTP: answered by incremental
	// reanalysis — exactly one full STA pass for the baseline, zero
	// pipeline re-runs (the robust pool counter is the witness that no
	// re-characterization or re-synthesis happened).
	poolBefore := obs.Default().Counter("robust.pool_tasks").Value()
	fullBefore := sta.FullAnalyses()
	resp, wi := postQuery(t, ts, dig, `{"schema":"stdcelltune-query/1","what_if":{"op":"substitute","from":"OR2_1","to":"OR2_2"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("what-if: %d %s", resp.StatusCode, wi)
	}
	var wr query.WhatIfResult
	if err := json.Unmarshal(wi, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Schema != query.SchemaWhatIf || wr.Op != "substitute" {
		t.Fatalf("what-if result %s", wi)
	}
	if wr.FullAnalyses != 1 {
		t.Errorf("what-if ran %d full analyses, want exactly 1 (baseline)", wr.FullAnalyses)
	}
	if got := obs.Default().Counter("robust.pool_tasks").Value(); got != poolBefore {
		t.Errorf("what-if ran %d robust-pool tasks, want 0 (no re-characterization)", got-poolBefore)
	}
	_ = fullBefore

	// Warm what-if: served from cache without touching the engine at all.
	fullBefore = sta.FullAnalyses()
	resp, wi2 := postQuery(t, ts, dig, `{"schema":"stdcelltune-query/1","what_if":{"op":"substitute","from":"OR2_1","to":"OR2_2"}}`)
	if oc := resp.Header.Get("X-Query-Cache"); oc != "hit" {
		t.Fatalf("warm what-if X-Query-Cache %q, want hit", oc)
	}
	if !bytes.Equal(wi, wi2) {
		t.Fatal("warm what-if bytes differ")
	}
	if got := sta.FullAnalyses(); got != fullBefore {
		t.Errorf("warm what-if ran %d full STA analyses, want 0", got-fullBefore)
	}

	// Bad query documents are rejected with the envelope, not cached.
	resp, data := postQuery(t, ts, dig, `{"schema":"stdcelltune-query/1","from":"nonsense"}`)
	var env v2Env
	json.Unmarshal(data, &env)
	if resp.StatusCode != http.StatusBadRequest || env.Error.Code != "bad_query" {
		t.Errorf("bad table: %d code %q, want 400 bad_query", resp.StatusCode, env.Error.Code)
	}

	// Satellite: a different library digest misses — the cache key binds
	// the result to the exact library it was computed from.
	spec2 := smallSpec
	spec2.Seed = 2
	dig2 := queryLib(t, ts, m, spec2)
	if dig2 == dig {
		t.Fatal("fixture: different seed produced the same digest")
	}
	resp, other := postQuery(t, ts, dig2, groupQ)
	if oc := resp.Header.Get("X-Query-Cache"); oc != "miss" {
		t.Fatalf("same query against mutated library: X-Query-Cache %q, want miss", oc)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query against second library: %d %s", resp.StatusCode, other)
	}
}

// TestV2QueryNotQueryable: a cache entry without the pipeline's
// artifact set (here: a fake run) exists but cannot back a query store
// — the query route answers 409 with the not_queryable code rather
// than 500.
func TestV2QueryNotQueryable(t *testing.T) {
	store, _ := cache.New("")
	m := NewManager(store, ManagerOptions{
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) { return fakeBlobs(s), nil },
	})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	spec := Spec{Design: "mcu-small", Instances: 2, Seed: 5}
	j, err := m.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	resp, data := doReq(t, "POST", ts.URL+"/v2/libraries/"+j.Digest+"/query",
		[]byte(`{"schema":"stdcelltune-query/1","from":"cells"}`))
	var env v2Env
	json.Unmarshal(data, &env)
	if resp.StatusCode != http.StatusConflict || env.Error.Code != "not_queryable" {
		t.Fatalf("query on non-library entry: %d code %q, want 409 not_queryable (%s)", resp.StatusCode, env.Error.Code, data)
	}

	// And it does not appear in the libraries listing.
	var libs struct {
		Libraries []string `json:"libraries"`
	}
	if err := json.Unmarshal(getBytes(t, ts.URL+"/v2/libraries"), &libs); err != nil {
		t.Fatal(err)
	}
	for _, d := range libs.Libraries {
		if d == j.Digest {
			t.Errorf("non-library entry %s listed under /v2/libraries", d)
		}
	}
}

// TestRoutesCoverHandler: the exported route table and the mounted
// handler agree — every declared non-cluster route answers something
// other than the mux's bare 404, and cluster routes stay unmounted on
// a single-node manager.
func TestRoutesCoverHandler(t *testing.T) {
	store, _ := cache.New("")
	m := NewManager(store, ManagerOptions{
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) { return fakeBlobs(s), nil },
	})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	for _, rt := range Routes() {
		parts := strings.SplitN(rt.Pattern, " ", 2)
		method, path := parts[0], parts[1]
		path = strings.NewReplacer("{id}", "probe", "{digest}", "sha256:probe", "{name}", "probe").Replace(path)
		resp, _ := doReq(t, method, ts.URL+path, []byte(`{}`))
		if rt.Cluster {
			// Cluster routes must 404 via the mux (plain text), since the
			// manager has no coordinator.
			if ct := resp.Header.Get("Content-Type"); resp.StatusCode != http.StatusNotFound || strings.Contains(ct, "json") {
				t.Errorf("%s: cluster route mounted on single-node manager (status %d, ct %q)", rt.Pattern, resp.StatusCode, ct)
			}
			continue
		}
		// Mounted routes always answer JSON, SSE, or Prometheus text —
		// never the mux's bare "404 page not found" text/plain fallback.
		if resp.StatusCode == http.StatusNotFound {
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
				t.Errorf("%s: not mounted (bare mux 404, ct %q)", rt.Pattern, ct)
			}
		}
	}
}
