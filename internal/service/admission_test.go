package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stdcelltune"
)

// fakeClock is an injectable clock the admission tests advance by hand:
// no admission behavior here depends on wall time.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1700000000, 0)} }

func TestTokenBucket(t *testing.T) {
	clk := newFakeClock()
	b := newTokenBucket(2, 0, clk.now) // 2 rps, burst = ceil(rate) = 2

	for i := 0; i < 2; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("burst token %d refused", i+1)
		}
	}
	ok, retry := b.take()
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retryAfter %s, want (0, 500ms] at 2 rps", retry)
	}
	// Refill exactly one token's worth and it admits exactly one.
	clk.advance(500 * time.Millisecond)
	if ok, _ := b.take(); !ok {
		t.Fatal("token not refilled after 1/rate elapsed")
	}
	if ok, _ := b.take(); ok {
		t.Fatal("refill granted more than rate*dt tokens")
	}
	// Idle time never accumulates past burst.
	clk.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("post-idle token %d refused", i+1)
		}
	}
	if ok, _ := b.take(); ok {
		t.Fatal("burst cap exceeded after long idle")
	}

	// Zero rate = unlimited; nil bucket = unlimited.
	unlimited := newTokenBucket(0, 0, clk.now)
	for i := 0; i < 100; i++ {
		if ok, _ := unlimited.take(); !ok {
			t.Fatal("zero-rate bucket limited")
		}
	}
	var nilB *tokenBucket
	if ok, _ := nilB.take(); !ok {
		t.Fatal("nil bucket limited")
	}
}

func TestBreakerTripProbeClose(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(3, 10*time.Second, clk.now)
	const dig = "sha256:feed"

	// Two poison failures: still closed.
	for i := 0; i < 2; i++ {
		if tripped := b.failure(dig); tripped {
			t.Fatalf("tripped after %d failures with k=3", i+1)
		}
		if ok, _ := b.allow(dig); !ok {
			t.Fatal("closed breaker refused traffic")
		}
	}
	// Third failure trips it.
	if !b.failure(dig) {
		t.Fatal("third failure did not trip")
	}
	if b.openCount() != 1 {
		t.Fatalf("openCount %d, want 1", b.openCount())
	}
	ok, retry := b.allow(dig)
	if ok || retry <= 0 || retry > 10*time.Second {
		t.Fatalf("open breaker: ok=%v retry=%s", ok, retry)
	}
	// Other digests are unaffected.
	if ok, _ := b.allow("sha256:beef"); !ok {
		t.Fatal("breaker leaked across digests")
	}

	// After cooldown: exactly one probe, concurrent traffic still held.
	clk.advance(11 * time.Second)
	if ok, _ := b.allow(dig); !ok {
		t.Fatal("half-open breaker refused the probe")
	}
	if ok, _ := b.allow(dig); ok {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe succeeds: circuit closes, history gone.
	b.success(dig)
	if ok, _ := b.allow(dig); !ok {
		t.Fatal("closed-after-probe breaker refused traffic")
	}
	if b.openCount() != 0 {
		t.Fatalf("openCount %d after close", b.openCount())
	}
	// A single new failure does not trip a freshly closed circuit.
	if b.failure(dig) {
		t.Fatal("breaker kept stale failure count after success")
	}
}

func TestBreakerProbeFailureRetrips(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(2, 5*time.Second, clk.now)
	const dig = "sha256:feed"
	b.failure(dig)
	b.failure(dig) // trip
	clk.advance(6 * time.Second)
	if ok, _ := b.allow(dig); !ok {
		t.Fatal("probe refused")
	}
	// The probe fails: one failure re-trips immediately.
	if !b.failure(dig) {
		t.Fatal("failed probe did not re-trip")
	}
	if ok, _ := b.allow(dig); ok {
		t.Fatal("re-tripped breaker admitted traffic")
	}
	// settle releases a probe without a verdict.
	clk.advance(6 * time.Second)
	if ok, _ := b.allow(dig); !ok {
		t.Fatal("second probe refused")
	}
	b.settle(dig)
	if ok, _ := b.allow(dig); !ok {
		t.Fatal("settled probe blocked the next one")
	}

	var nilBrk *breaker
	if ok, _ := nilBrk.allow(dig); !ok {
		t.Fatal("nil breaker limited")
	}
	nilBrk.success(dig)
	nilBrk.settle(dig)
	if nilBrk.failure(dig) {
		t.Fatal("nil breaker tripped")
	}
}

func TestRetryAfterWrapper(t *testing.T) {
	err := withRetryAfter(ErrRateLimited, 1500*time.Millisecond)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatal("wrapper hides the sentinel")
	}
	d, ok := RetryAfter(err)
	if !ok || d != 1500*time.Millisecond {
		t.Fatalf("RetryAfter = %s, %v", d, ok)
	}
	if _, ok := RetryAfter(ErrQueueFull); ok {
		t.Fatal("plain error reported a retry hint")
	}
	// Sub-millisecond hints round up so Retry-After is never zero.
	if d, _ := RetryAfter(withRetryAfter(ErrRateLimited, 0)); d < time.Millisecond {
		t.Fatalf("zero hint not floored: %s", d)
	}
}

// TestSubmitRateLimited drives the limiter through Manager.Submit: the
// burst is admitted, the next submission is refused with ErrRateLimited
// and a retry hint, and refill admits again.
func TestSubmitRateLimited(t *testing.T) {
	clk := newFakeClock()
	m := newTestManager(t, ManagerOptions{
		MaxRPS: 1, Burst: 2, Now: clk.now,
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) { return fakeBlobs(s), nil },
	})
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(Spec{Seed: int64(i + 1)}, ""); err != nil {
			t.Fatalf("burst submit %d: %v", i+1, err)
		}
	}
	_, err := m.Submit(Spec{Seed: 3}, "")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-rate submit: %v, want ErrRateLimited", err)
	}
	if _, ok := RetryAfter(err); !ok {
		t.Fatal("rate-limit rejection carries no retry hint")
	}
	clk.advance(time.Second)
	if _, err := m.Submit(Spec{Seed: 4}, ""); err != nil {
		t.Fatalf("post-refill submit: %v", err)
	}
}

// TestSubmitTenantQuota: a tenant at its concurrent-job cap gets 429;
// other tenants are unaffected; finishing a job frees the slot.
func TestSubmitTenantQuota(t *testing.T) {
	release := make(chan struct{})
	m := newTestManager(t, ManagerOptions{
		Workers: 2, TenantQuota: 1,
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) {
			<-release
			return fakeBlobs(s), nil
		},
	})
	j1, err := m.Submit(Spec{Seed: 1}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Submit(Spec{Seed: 2}, "alice")
	if !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("second concurrent job for alice: %v, want ErrTenantQuota", err)
	}
	if _, err := m.Submit(Spec{Seed: 3}, "bob"); err != nil {
		t.Fatalf("bob blocked by alice's quota: %v", err)
	}
	close(release)
	waitDone(t, j1)
	// Slot freed: alice may submit again.
	if _, err := m.Submit(Spec{Seed: 4}, "alice"); err != nil {
		t.Fatalf("post-completion submit for alice: %v", err)
	}
}

// TestBreakerThroughManager: K consecutive panics for one digest trip
// its circuit; submissions for it get ErrCircuitOpen while other specs
// pass; after cooldown a successful probe closes it.
func TestBreakerThroughManager(t *testing.T) {
	clk := newFakeClock()
	poison := true
	m := newTestManager(t, ManagerOptions{
		BreakerK: 2, BreakerCooldown: 10 * time.Second, Now: clk.now,
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) {
			if poison && s.Seed == 13 {
				panic("pipeline bug")
			}
			return fakeBlobs(s), nil
		},
	})
	bad := Spec{Seed: 13}
	for i := 0; i < 2; i++ {
		j, err := m.Submit(bad, "")
		if err != nil {
			t.Fatalf("poison submit %d refused early: %v", i+1, err)
		}
		waitDone(t, j)
		v := j.View()
		if v.Status != StatusFailed || !strings.Contains(v.Error, "panicked") {
			t.Fatalf("poison job %d: %s %q", i+1, v.Status, v.Error)
		}
	}
	if m.BreakerOpen() != 1 {
		t.Fatalf("BreakerOpen %d, want 1", m.BreakerOpen())
	}
	_, err := m.Submit(bad, "")
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("tripped digest admitted: %v", err)
	}
	// A different spec sails through.
	ok, err := m.Submit(Spec{Seed: 1}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ok)

	// Cooldown passes, the bug is "fixed", the probe closes the circuit.
	clk.advance(11 * time.Second)
	poison = false
	probe, err := m.Submit(bad, "")
	if err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	waitDone(t, probe)
	if v := probe.View(); v.Status != StatusDone {
		t.Fatalf("probe: %s %q", v.Status, v.Error)
	}
	if m.BreakerOpen() != 0 {
		t.Fatalf("BreakerOpen %d after successful probe", m.BreakerOpen())
	}
	if _, err := m.Submit(bad, ""); err != nil {
		t.Fatalf("closed circuit still refusing: %v", err)
	}
}

// TestQuarantineTripsBreaker: ErrQuarantined counts as poison just like
// a panic.
func TestQuarantineTripsBreaker(t *testing.T) {
	m := newTestManager(t, ManagerOptions{
		BreakerK: 1,
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) {
			return nil, fmt.Errorf("characterize: %w", stdcelltune.ErrQuarantined)
		},
	})
	j, err := m.Submit(Spec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if _, err := m.Submit(Spec{}, ""); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("quarantine did not trip breaker: %v", err)
	}
}

// TestOrdinaryFailureDoesNotTrip: infeasible-window failures are the
// spec's own fault, not poison; the breaker must ignore them.
func TestOrdinaryFailureDoesNotTrip(t *testing.T) {
	m := newTestManager(t, ManagerOptions{
		BreakerK: 1,
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) {
			return nil, fmt.Errorf("tune: %w", stdcelltune.ErrWindowInfeasible)
		},
	})
	for i := 0; i < 3; i++ {
		j, err := m.Submit(Spec{}, "")
		if err != nil {
			t.Fatalf("ordinary failure tripped breaker on attempt %d: %v", i+1, err)
		}
		waitDone(t, j)
	}
	if m.BreakerOpen() != 0 {
		t.Fatalf("BreakerOpen %d for non-poison failures", m.BreakerOpen())
	}
}

// TestAdmissionHTTP: the HTTP surface of admission — 429 with a
// Retry-After header on rate limit and tenant quota, tenant taken from
// X-API-Key.
func TestAdmissionHTTP(t *testing.T) {
	clk := newFakeClock()
	release := make(chan struct{})
	defer close(release)
	m := newTestManager(t, ManagerOptions{
		MaxRPS: 100, Burst: 1, TenantQuota: 1, Now: clk.now, Workers: 2,
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) {
			<-release
			return fakeBlobs(s), nil
		},
	})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	post := func(spec Spec, key string) *http.Response {
		t.Helper()
		body, _ := json.Marshal(spec)
		req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Burst of 1: first accepted, second rate-limited.
	r1 := post(Spec{Seed: 1}, "alice")
	r1.Body.Close()
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", r1.StatusCode)
	}
	r2 := post(Spec{Seed: 2}, "bob")
	r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit: %d, want 429", r2.StatusCode)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	// Refill, then hit alice's tenant quota (her seed-1 job still runs).
	clk.advance(time.Second)
	r3 := post(Spec{Seed: 3}, "alice")
	r3.Body.Close()
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota submit: %d, want 429", r3.StatusCode)
	}
	clk.advance(time.Second)
	r4 := post(Spec{Seed: 4}, "bob")
	defer r4.Body.Close()
	if r4.StatusCode != http.StatusAccepted {
		t.Fatalf("bob's submit: %d", r4.StatusCode)
	}
}
