package service

import (
	"bytes"
	"context"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"stdcelltune/internal/service/cache"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// rfc3339 matches the timestamps the job document carries — the only
// run-to-run volatile content in a v1 body (ids are a deterministic
// per-manager sequence, digests are content-addressed).
var rfc3339 = regexp.MustCompile(`"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}(\.\d+)?(Z|[+-]\d{2}:\d{2})"`)

func normalizeV1(body []byte) []byte {
	return rfc3339.ReplaceAll(body, []byte(`"<TIME>"`))
}

// TestV1GoldenBodies pins every api/1 response body byte-for-byte
// (after timestamp normalization). The /v1 surface is a frozen
// compatibility shim: any diff here is a breaking change to deployed
// clients and must not happen — fix the code, not the golden file.
func TestV1GoldenBodies(t *testing.T) {
	store, _ := cache.New("")
	m := NewManager(store, ManagerOptions{
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) { return fakeBlobs(s), nil },
	})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	// One deterministic job, driven to completion before any capture.
	spec := Spec{Design: "mcu-small", Instances: 3, Seed: 1, Method: "sigma-ceiling", Bound: 0.02, ClockNS: 6}
	j, err := m.SubmitTagged(spec, "", "golden-req-1")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	dig := j.Digest

	cases := []struct {
		name, method, path string
		body               string
		wantStatus         int
	}{
		{"post_job_bad_spec", "POST", "/v1/jobs", `{"unknown_field":1}`, 400},
		{"get_job", "GET", "/v1/jobs/job-1", "", 200},
		{"get_job_missing", "GET", "/v1/jobs/absent", "", 404},
		{"list_jobs", "GET", "/v1/jobs", "", 200},
		{"list_artifacts", "GET", "/v1/artifacts", "", 200},
		{"get_artifact_set", "GET", "/v1/artifacts/" + dig, "", 200},
		{"get_artifact_set_missing", "GET", "/v1/artifacts/sha256:absent", "", 404},
		{"get_artifact", "GET", "/v1/artifacts/" + dig + "/result.json", "", 200},
		{"get_artifact_missing", "GET", "/v1/artifacts/" + dig + "/absent.txt", "", 404},
		{"get_trace_missing", "GET", "/v1/jobs/job-1/trace", "", 404},
	}
	for _, tc := range cases {
		var rd *bytes.Reader
		if tc.body != "" {
			rd = bytes.NewReader([]byte(tc.body))
		} else {
			rd = bytes.NewReader(nil)
		}
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.wantStatus)
			continue
		}
		got := normalizeV1(buf.Bytes())
		// Digests are deterministic but long; keep goldens readable and
		// robust to spec-digest evolution by tokenizing them too.
		got = bytes.ReplaceAll(got, []byte(dig), []byte("<DIGEST>"))

		path := filepath.Join("testdata", "v1_golden", tc.name+".golden")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update): %v", tc.name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: v1 body drifted from golden.\ngot:\n%s\nwant:\n%s", tc.name, got, want)
		}
	}
}
