package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"stdcelltune"
	"stdcelltune/internal/obs"
	"stdcelltune/internal/query"
	"stdcelltune/internal/service/shard"
)

// SchemaAPI2 is the stdcelltune-api/2 surface identifier: one error
// envelope, one pagination scheme, one digest-addressed naming
// convention across jobs, libraries, queries and cluster nodes.
const SchemaAPI2 = "stdcelltune-api/2"

// StatusClientClosedRequest is the nginx-convention status for a
// request abandoned by cancellation; net/http has no constant for it.
const StatusClientClosedRequest = 499

// ErrNotFound marks a missing resource (job, library, artifact); the
// HTTP layer maps it to 404.
var ErrNotFound = errors.New("not found")

// HTTPStatus maps a pipeline or service error to an HTTP status via
// errors.Is over the typed sentinels. This single function is the whole
// error contract of the API: the facade promises the sentinels survive
// wrapping, and the daemon promises these mappings.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrBadSpec), errors.Is(err, query.ErrBadQuery):
		return http.StatusBadRequest // 400
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound // 404
	case errors.Is(err, ErrRateLimited), errors.Is(err, ErrTenantQuota):
		return http.StatusTooManyRequests // 429, Retry-After when the error carries one
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull), errors.Is(err, ErrCircuitOpen):
		return http.StatusServiceUnavailable // 503
	case errors.Is(err, stdcelltune.ErrWindowInfeasible), errors.Is(err, ErrNotQueryable), errors.Is(err, query.ErrNoDesign):
		return http.StatusConflict // 409: the request is well-formed but contradicts the resource's state
	case errors.Is(err, stdcelltune.ErrQuarantined):
		return http.StatusUnprocessableEntity // 422: inputs degenerate beyond the quarantine limit
	case errors.Is(err, stdcelltune.ErrCancelled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return StatusClientClosedRequest // 499
	default:
		return http.StatusInternalServerError // 500
	}
}

// ErrorCode maps an error to its stdcelltune-api/2 machine-readable
// code slug — the stable contract clients switch on (messages are for
// humans and may change).
func ErrorCode(err error) string {
	switch {
	case errors.Is(err, ErrBadSpec):
		return "bad_spec"
	case errors.Is(err, query.ErrBadQuery):
		return "bad_query"
	case errors.Is(err, ErrNotFound):
		return "not_found"
	case errors.Is(err, ErrRateLimited):
		return "rate_limited"
	case errors.Is(err, ErrTenantQuota):
		return "tenant_quota"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.Is(err, ErrCircuitOpen):
		return "circuit_open"
	case errors.Is(err, ErrNotQueryable), errors.Is(err, query.ErrNoDesign):
		return "not_queryable"
	case errors.Is(err, stdcelltune.ErrWindowInfeasible):
		return "window_infeasible"
	case errors.Is(err, stdcelltune.ErrQuarantined):
		return "quarantined"
	case errors.Is(err, stdcelltune.ErrCancelled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	default:
		return "internal"
	}
}

// errorDoc is the api/1 JSON error body, preserved byte-for-byte under
// the /v1 compatibility shims.
type errorDoc struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// errorEnvelope is the api/2 error body: every /v2 route that fails
// returns exactly this shape.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// maxQueryBody bounds a query document read; a filter/aggregate
// document is hundreds of bytes, so 1 MiB is generous headroom, not a
// real limit.
const maxQueryBody = 1 << 20

// Pagination bounds of the api/2 list endpoints.
const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// RouteInfo describes one served route: the mux pattern (which doubles
// as the RED-metric label) and whether it only mounts on cluster
// coordinators.
type RouteInfo struct {
	Pattern string
	Cluster bool
}

// route is one route-table entry: the pattern, its mount condition,
// and the handler builder.
type route struct {
	pattern string
	cluster bool
	build   func(*Manager) http.HandlerFunc
}

// Routes returns the full route table of the daemon as served by
// Handler — the machine-readable API surface. cmd/obscheck -apispec
// cross-checks docs/API.md against exactly this list, so the spec can
// never silently drift from the code.
func Routes() []RouteInfo {
	table := routeTable()
	out := make([]RouteInfo, len(table))
	for i, rt := range table {
		out[i] = RouteInfo{Pattern: rt.pattern, Cluster: rt.cluster}
	}
	return out
}

// Handler builds the daemon's HTTP surface over a manager from the
// declarative route table:
//
// stdcelltune-api/2 (the primary surface — error envelope
// {"error": {"code", "message", "request_id"}}, cursor pagination via
// ?limit=&cursor=, digest-addressed libraries):
//
//	POST   /v2/jobs                  submit a Spec, 202 + job document
//	GET    /v2/jobs                  list jobs (paginated)
//	GET    /v2/jobs/{id}             job document
//	DELETE /v2/jobs/{id}             cancel, 202 + job document
//	GET    /v2/jobs/{id}/events      SSE stream of pipeline span events
//	GET    /v2/jobs/{id}/trace       Chrome trace-event JSON
//	GET    /v2/libraries             list cached library digests
//	GET    /v2/libraries/{digest}    artifact index of one library
//	GET    /v2/libraries/{digest}/artifacts/{name}  artifact bytes
//	POST   /v2/libraries/{digest}/query             run a query document
//
// stdcelltune-api/1 (deprecated, kept as byte-identical compatibility
// shims; see docs/API.md):
//
//	POST   /v1/jobs                 GET /v1/jobs
//	GET    /v1/jobs/{id}            DELETE /v1/jobs/{id}
//	GET    /v1/jobs/{id}/events     GET /v1/jobs/{id}/trace
//	GET    /v1/artifacts            GET /v1/artifacts/{digest}
//	GET    /v1/artifacts/{digest}/{name}
//
// When the manager carries a cluster coordinator, the shard protocol
// mounts alongside (absent on single-node daemons):
//
//	POST   /v1/cluster/nodes            worker registration
//	POST   /v1/cluster/lease            lease a shard task (204 = no work)
//	POST   /v1/cluster/complete         report a shard result (409 = stale lease)
//	GET    /v1/cluster                  coordinator statistics
//	GET    /v1/cluster/shards/{digest}  retained shard set of a finished job
//
// Unversioned: GET /healthz (liveness + queue snapshot) and
// GET /metrics (Prometheus text exposition, format 0.0.4).
//
// Every route is wrapped by the instrument middleware: the mux pattern
// doubles as the RED-metric route label, and each request carries an
// accepted-or-minted X-Request-ID.
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	cluster := m.Cluster() != nil
	for _, rt := range routeTable() {
		if rt.cluster && !cluster {
			continue
		}
		mux.HandleFunc(rt.pattern, instrument(rt.pattern, rt.build(m)))
	}
	return mux
}

// routeTable declares every route of the daemon. Order is
// documentation order; the mux matches by pattern specificity, not
// position.
func routeTable() []route {
	return []route{
		// --- stdcelltune-api/2 ---------------------------------------
		{pattern: "POST /v2/jobs", build: handleV2SubmitJob},
		{pattern: "GET /v2/jobs", build: handleV2ListJobs},
		{pattern: "GET /v2/jobs/{id}", build: handleV2GetJob},
		{pattern: "DELETE /v2/jobs/{id}", build: handleV2CancelJob},
		{pattern: "GET /v2/jobs/{id}/events", build: handleV2JobEvents},
		{pattern: "GET /v2/jobs/{id}/trace", build: handleV2JobTrace},
		{pattern: "GET /v2/libraries", build: handleV2ListLibraries},
		{pattern: "GET /v2/libraries/{digest}", build: handleV2GetLibrary},
		{pattern: "GET /v2/libraries/{digest}/artifacts/{name}", build: handleV2GetArtifact},
		{pattern: "POST /v2/libraries/{digest}/query", build: handleV2Query},

		// --- stdcelltune-api/1 compatibility shims -------------------
		{pattern: "POST /v1/jobs", build: handleV1SubmitJob},
		{pattern: "GET /v1/jobs", build: handleV1ListJobs},
		{pattern: "GET /v1/jobs/{id}", build: handleV1GetJob},
		{pattern: "DELETE /v1/jobs/{id}", build: handleV1CancelJob},
		{pattern: "GET /v1/jobs/{id}/events", build: handleV1JobEvents},
		{pattern: "GET /v1/jobs/{id}/trace", build: handleV1JobTrace},
		{pattern: "GET /v1/artifacts", build: handleV1ListArtifacts},
		{pattern: "GET /v1/artifacts/{digest}", build: handleV1GetArtifactSet},
		{pattern: "GET /v1/artifacts/{digest}/{name}", build: handleV1GetArtifact},

		// --- cluster shard protocol (coordinator-only) ---------------
		{pattern: "POST /v1/cluster/nodes", cluster: true, build: handleClusterRegister},
		{pattern: "POST /v1/cluster/lease", cluster: true, build: handleClusterLease},
		{pattern: "POST /v1/cluster/complete", cluster: true, build: handleClusterComplete},
		{pattern: "GET /v1/cluster", cluster: true, build: handleClusterStats},
		{pattern: "GET /v1/cluster/shards/{digest}", cluster: true, build: handleClusterShards},

		// --- unversioned ---------------------------------------------
		{pattern: "GET /healthz", build: handleHealthz},
		{pattern: "GET /metrics", build: handleMetrics},
	}
}

// --- api/2 handlers --------------------------------------------------

func handleV2SubmitJob(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeErrorV2(w, r, fmt.Errorf("%w: %v", ErrBadSpec, err))
			return
		}
		j, err := m.SubmitTagged(spec, r.Header.Get("X-API-Key"), RequestIDFrom(r.Context()))
		if err != nil {
			writeErrorV2(w, r, err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.View())
	}
}

// pageParams parses the api/2 ?limit=&cursor= pair. A missing limit
// defaults to defaultPageLimit; 0 and anything above maxPageLimit
// clamp to maxPageLimit.
func pageParams(r *http.Request) (int, string, error) {
	limit := defaultPageLimit
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return 0, "", fmt.Errorf("%w: bad limit %q", query.ErrBadQuery, s)
		}
		limit = n
	}
	if limit == 0 || limit > maxPageLimit {
		limit = maxPageLimit
	}
	return limit, r.URL.Query().Get("cursor"), nil
}

func handleV2ListJobs(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		limit, cursor, err := pageParams(r)
		if err != nil {
			writeErrorV2(w, r, err)
			return
		}
		jobs, next, err := m.JobsPage(limit, cursor)
		if err != nil {
			writeErrorV2(w, r, err)
			return
		}
		views := make([]JobView, len(jobs))
		for i, j := range jobs {
			views[i] = j.View()
		}
		writeJSON(w, http.StatusOK, struct {
			Jobs       []JobView `json:"jobs"`
			NextCursor string    `json:"next_cursor,omitempty"`
		}{views, next})
	}
}

func handleV2GetJob(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			writeErrorV2(w, r, fmt.Errorf("%w: no such job", ErrNotFound))
			return
		}
		writeJSON(w, http.StatusOK, j.View())
	}
}

func handleV2CancelJob(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			writeErrorV2(w, r, fmt.Errorf("%w: no such job", ErrNotFound))
			return
		}
		j.Cancel()
		writeJSON(w, http.StatusAccepted, j.View())
	}
}

func handleV2JobEvents(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			writeErrorV2(w, r, fmt.Errorf("%w: no such job", ErrNotFound))
			return
		}
		serveEvents(w, r, j)
	}
}

func handleV2JobTrace(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			writeErrorV2(w, r, fmt.Errorf("%w: no such job", ErrNotFound))
			return
		}
		tr := j.Tracer()
		if tr == nil {
			writeErrorV2(w, r, fmt.Errorf("%w: no trace for job (tracing disabled or job not started)", ErrNotFound))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		tr.WriteChromeTrace(w)
	}
}

func handleV2ListLibraries(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Libraries []string `json:"libraries"`
		}{m.Libraries()})
	}
}

func handleV2GetLibrary(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e, ok := m.Store().Peek(r.PathValue("digest"))
		if !ok || e.Artifact(ArtifactSpec) == nil {
			writeErrorV2(w, r, fmt.Errorf("%w: no such library", ErrNotFound))
			return
		}
		views := make([]ArtifactView, len(e.Artifacts))
		for i, a := range e.Artifacts {
			views[i] = ArtifactView{Name: a.Name, SHA256: a.SHA256, Size: a.Size}
		}
		writeJSON(w, http.StatusOK, struct {
			Digest    string         `json:"digest"`
			Artifacts []ArtifactView `json:"artifacts"`
		}{e.Digest, views})
	}
}

func handleV2GetArtifact(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e, ok := m.Store().Peek(r.PathValue("digest"))
		if !ok || e.Artifact(ArtifactSpec) == nil {
			writeErrorV2(w, r, fmt.Errorf("%w: no such library", ErrNotFound))
			return
		}
		a := e.Artifact(r.PathValue("name"))
		if a == nil {
			writeErrorV2(w, r, fmt.Errorf("%w: no such artifact", ErrNotFound))
			return
		}
		serveArtifact(w, a.Name, a.SHA256, a.Bytes())
	}
}

func handleV2Query(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		raw, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBody+1))
		if err != nil {
			writeErrorV2(w, r, fmt.Errorf("%w: read body: %v", query.ErrBadQuery, err))
			return
		}
		if len(raw) > maxQueryBody {
			writeErrorV2(w, r, fmt.Errorf("%w: query document exceeds %d bytes", query.ErrBadQuery, maxQueryBody))
			return
		}
		doc, outcome, err := m.ExecuteQuery(r.Context(), r.PathValue("digest"), raw)
		if err != nil {
			writeErrorV2(w, r, err)
			return
		}
		// The cache verdict rides in a header so the body stays
		// byte-identical cold vs warm — the cache-correctness invariant
		// the tests pin.
		w.Header().Set("X-Query-Cache", outcome)
		writeJSON(w, http.StatusOK, doc)
	}
}

// --- api/1 compatibility shims ---------------------------------------
//
// The handler bodies below are the original api/1 implementations,
// unchanged: the shims' contract is byte-identical responses, pinned by
// the golden tests in server_v1_golden_test.go.

func handleV1SubmitJob(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrBadSpec, err))
			return
		}
		j, err := m.SubmitTagged(spec, r.Header.Get("X-API-Key"), RequestIDFrom(r.Context()))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.View())
	}
}

func handleV1ListJobs(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		jobs := m.Jobs()
		views := make([]JobView, len(jobs))
		for i, j := range jobs {
			views[i] = j.View()
		}
		writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
	}
}

func handleV1GetJob(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such job", Status: http.StatusNotFound})
			return
		}
		writeJSON(w, http.StatusOK, j.View())
	}
}

func handleV1CancelJob(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such job", Status: http.StatusNotFound})
			return
		}
		j.Cancel()
		writeJSON(w, http.StatusAccepted, j.View())
	}
}

func handleV1JobEvents(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such job", Status: http.StatusNotFound})
			return
		}
		serveEvents(w, r, j)
	}
}

func handleV1JobTrace(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such job", Status: http.StatusNotFound})
			return
		}
		tr := j.Tracer()
		if tr == nil {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "no trace for job (tracing disabled or job not started)", Status: http.StatusNotFound})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		tr.WriteChromeTrace(w)
	}
}

func handleV1ListArtifacts(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"digests": m.Digests()})
	}
}

func handleV1GetArtifactSet(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e, ok := m.Store().Lookup(r.PathValue("digest"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such artifact set", Status: http.StatusNotFound})
			return
		}
		views := make([]ArtifactView, len(e.Artifacts))
		for i, a := range e.Artifacts {
			views[i] = ArtifactView{Name: a.Name, SHA256: a.SHA256, Size: a.Size}
		}
		writeJSON(w, http.StatusOK, map[string]any{"digest": e.Digest, "artifacts": views})
	}
}

func handleV1GetArtifact(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e, ok := m.Store().Lookup(r.PathValue("digest"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such artifact set", Status: http.StatusNotFound})
			return
		}
		a := e.Artifact(r.PathValue("name"))
		if a == nil {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such artifact", Status: http.StatusNotFound})
			return
		}
		serveArtifact(w, a.Name, a.SHA256, a.Bytes())
	}
}

// serveArtifact writes artifact bytes with the content-type and
// integrity header both API versions share.
func serveArtifact(w http.ResponseWriter, name, sha string, data []byte) {
	if strings.HasSuffix(name, ".json") {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.Header().Set("X-Content-SHA256", sha)
	w.Write(data)
}

// --- cluster shard protocol ------------------------------------------
//
// The worker protocol stays on /v1: workers and coordinators deploy in
// lockstep inside one fleet, and the wire shapes (shard.* request and
// response structs) are versioned by the shard schema, not the HTTP
// prefix.

func handleClusterRegister(m *Manager) http.HandlerFunc {
	c := m.Cluster()
	return func(w http.ResponseWriter, r *http.Request) {
		var req shard.RegisterRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil || req.Name == "" {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: "register needs a node name", Status: http.StatusBadRequest})
			return
		}
		writeJSON(w, http.StatusOK, c.Register(req.Name, req.PeerAddr))
	}
}

func handleClusterLease(m *Manager) http.HandlerFunc {
	c := m.Cluster()
	return func(w http.ResponseWriter, r *http.Request) {
		var req shard.LeaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad lease request", Status: http.StatusBadRequest})
			return
		}
		lease, ok, err := c.Lease(req.Node)
		switch {
		case errors.Is(err, shard.ErrUnknownNode):
			writeJSON(w, http.StatusNotFound, errorDoc{Error: err.Error(), Status: http.StatusNotFound})
		case err != nil:
			writeError(w, err)
		case !ok:
			w.WriteHeader(http.StatusNoContent) // no work right now; poll again
		default:
			writeJSON(w, http.StatusOK, lease)
		}
	}
}

func handleClusterComplete(m *Manager) http.HandlerFunc {
	c := m.Cluster()
	return func(w http.ResponseWriter, r *http.Request) {
		var req shard.CompleteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad complete request", Status: http.StatusBadRequest})
			return
		}
		err := c.Complete(req.Node, req.Task, req.Token, req.Result, req.Error)
		switch {
		case errors.Is(err, shard.ErrStaleLease):
			// The fencing token lost: another worker holds (or already
			// finished) this shard. 409 tells the zombie to drop it.
			writeJSON(w, http.StatusConflict, errorDoc{Error: err.Error(), Status: http.StatusConflict})
		case errors.Is(err, shard.ErrUnknownNode):
			writeJSON(w, http.StatusNotFound, errorDoc{Error: err.Error(), Status: http.StatusNotFound})
		case err != nil:
			writeError(w, err)
		default:
			writeJSON(w, http.StatusOK, shard.CompleteResponse{OK: true})
		}
	}
}

func handleClusterStats(m *Manager) http.HandlerFunc {
	c := m.Cluster()
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Stats())
	}
}

func handleClusterShards(m *Manager) http.HandlerFunc {
	c := m.Cluster()
	return func(w http.ResponseWriter, r *http.Request) {
		set, ok := c.ShardSet(r.PathValue("digest"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "no retained shard set for digest", Status: http.StatusNotFound})
			return
		}
		writeJSON(w, http.StatusOK, set)
	}
}

// --- unversioned ------------------------------------------------------

func handleHealthz(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		doc := map[string]any{
			"ok":           true,
			"schema":       SchemaSpec,
			"jobs":         len(m.Jobs()),
			"cached":       m.Store().Len(),
			"methods":      MethodSlugs(),
			"recovered":    m.Recovered(),
			"breaker_open": m.BreakerOpen(),
			"draining":     m.Draining(),
		}
		if c := m.Cluster(); c != nil {
			st := c.Stats()
			doc["cluster"] = map[string]any{
				"workers":        st.Workers,
				"queue_depth":    st.QueueDepth,
				"steals":         st.Steals,
				"lease_expiries": st.LeaseExpiries,
			}
		}
		if p := m.Peers(); p != nil {
			doc["peers"] = p.Peers()
		}
		writeJSON(w, http.StatusOK, doc)
	}
}

func handleMetrics(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default().WritePrometheus(w)
	}
}

// sseKeepAlive is the interval between SSE comment frames (": ping")
// sent while a stream is idle, so proxies and clients with read
// timeouts keep long-quiet streams open. Package-level so tests can
// shrink it.
var sseKeepAlive = 15 * time.Second

// serveEvents streams a job's span events as Server-Sent Events:
// replayed history first, then live events, then one "done" event
// carrying the terminal job document.
func serveEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorDoc{Error: "streaming unsupported", Status: http.StatusNotImplemented})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// The stream opens with its correlation id as a comment frame, so a
	// captured SSE transcript ties back to the request without headers.
	if id := RequestIDFrom(r.Context()); id != "" {
		fmt.Fprintf(w, ": request-id=%s\n\n", id)
		fl.Flush()
	}

	replay, ch, unsub := j.Subscribe()
	defer unsub()
	send := func(event string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}
	for _, ev := range replay {
		send("span", ev)
	}
	keepalive := time.NewTicker(sseKeepAlive)
	defer keepalive.Stop()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				send("done", j.View())
				return
			}
			send("span", ev)
		case <-keepalive.C:
			// Comment frame per the SSE spec: ignored by clients, but
			// enough traffic to defeat idle timeouts.
			fmt.Fprint(w, ": ping\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// setRetryAfter adds the Retry-After header when the error carries a
// hint. Whole seconds per RFC 9110; round up so "retry after 10ms"
// doesn't become "retry immediately", and clamp to at least one second
// — a zero hint invites an instant retry storm.
func setRetryAfter(w http.ResponseWriter, err error) {
	if after, ok := RetryAfter(err); ok {
		secs := int(after / time.Second)
		if after%time.Second != 0 {
			secs++
		}
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
}

// writeError renders the api/1 error body.
func writeError(w http.ResponseWriter, err error) {
	status := HTTPStatus(err)
	setRetryAfter(w, err)
	writeJSON(w, status, errorDoc{Error: err.Error(), Status: status})
}

// writeErrorV2 renders the api/2 error envelope, correlating the
// failure with the request id the instrument middleware accepted or
// minted.
func writeErrorV2(w http.ResponseWriter, r *http.Request, err error) {
	status := HTTPStatus(err)
	setRetryAfter(w, err)
	writeJSON(w, status, errorEnvelope{Error: errorBody{
		Code:      ErrorCode(err),
		Message:   err.Error(),
		RequestID: RequestIDFrom(r.Context()),
	}})
}
