package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"stdcelltune"
	"stdcelltune/internal/obs"
	"stdcelltune/internal/service/shard"
)

// StatusClientClosedRequest is the nginx-convention status for a
// request abandoned by cancellation; net/http has no constant for it.
const StatusClientClosedRequest = 499

// HTTPStatus maps a pipeline or service error to an HTTP status via
// errors.Is over the typed sentinels. This single function is the whole
// error contract of the API: the facade promises the sentinels survive
// wrapping, and the daemon promises these mappings.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrBadSpec):
		return http.StatusBadRequest // 400
	case errors.Is(err, ErrRateLimited), errors.Is(err, ErrTenantQuota):
		return http.StatusTooManyRequests // 429, Retry-After when the error carries one
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull), errors.Is(err, ErrCircuitOpen):
		return http.StatusServiceUnavailable // 503
	case errors.Is(err, stdcelltune.ErrWindowInfeasible):
		return http.StatusConflict // 409: the spec is well-formed but self-contradictory
	case errors.Is(err, stdcelltune.ErrQuarantined):
		return http.StatusUnprocessableEntity // 422: inputs degenerate beyond the quarantine limit
	case errors.Is(err, stdcelltune.ErrCancelled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return StatusClientClosedRequest // 499
	default:
		return http.StatusInternalServerError // 500
	}
}

// errorDoc is the JSON error body.
type errorDoc struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// Handler builds the daemon's HTTP surface over a manager:
//
//	POST   /v1/jobs                 submit a Spec, 202 + job document
//	GET    /v1/jobs                 list jobs
//	GET    /v1/jobs/{id}            job document
//	DELETE /v1/jobs/{id}            cancel, 202 + job document
//	GET    /v1/jobs/{id}/events     SSE stream of pipeline span events
//	GET    /v1/jobs/{id}/trace      Chrome trace-event JSON of the job's spans
//	GET    /v1/artifacts            list cached digests
//	GET    /v1/artifacts/{digest}   artifact index of one cache entry
//	GET    /v1/artifacts/{digest}/{name}  artifact bytes
//	GET    /healthz                 liveness + queue snapshot
//	GET    /metrics                 Prometheus text exposition (format 0.0.4)
//
// When the manager carries a cluster coordinator, the shard protocol
// mounts alongside (absent on single-node daemons):
//
//	POST   /v1/cluster/nodes            worker registration
//	POST   /v1/cluster/lease            lease a shard task (204 = no work)
//	POST   /v1/cluster/complete         report a shard result (409 = stale lease)
//	GET    /v1/cluster                  coordinator statistics
//	GET    /v1/cluster/shards/{digest}  retained shard set of a finished job
//
// Every route is wrapped by the instrument middleware: the mux pattern
// doubles as the RED-metric route label, and each request carries an
// accepted-or-minted X-Request-ID.
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, fn http.HandlerFunc) {
		mux.HandleFunc(pattern, instrument(pattern, fn))
	}

	handle("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrBadSpec, err))
			return
		}
		j, err := m.SubmitTagged(spec, r.Header.Get("X-API-Key"), RequestIDFrom(r.Context()))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.View())
	})

	handle("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := m.Jobs()
		views := make([]JobView, len(jobs))
		for i, j := range jobs {
			views[i] = j.View()
		}
		writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
	})

	handle("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such job", Status: http.StatusNotFound})
			return
		}
		writeJSON(w, http.StatusOK, j.View())
	})

	handle("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such job", Status: http.StatusNotFound})
			return
		}
		j.Cancel()
		writeJSON(w, http.StatusAccepted, j.View())
	})

	handle("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such job", Status: http.StatusNotFound})
			return
		}
		serveEvents(w, r, j)
	})

	handle("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such job", Status: http.StatusNotFound})
			return
		}
		tr := j.Tracer()
		if tr == nil {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "no trace for job (tracing disabled or job not started)", Status: http.StatusNotFound})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		tr.WriteChromeTrace(w)
	})

	handle("GET /v1/artifacts", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"digests": m.Digests()})
	})

	handle("GET /v1/artifacts/{digest}", func(w http.ResponseWriter, r *http.Request) {
		e, ok := m.Store().Lookup(r.PathValue("digest"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such artifact set", Status: http.StatusNotFound})
			return
		}
		views := make([]ArtifactView, len(e.Artifacts))
		for i, a := range e.Artifacts {
			views[i] = ArtifactView{Name: a.Name, SHA256: a.SHA256, Size: a.Size}
		}
		writeJSON(w, http.StatusOK, map[string]any{"digest": e.Digest, "artifacts": views})
	})

	handle("GET /v1/artifacts/{digest}/{name}", func(w http.ResponseWriter, r *http.Request) {
		e, ok := m.Store().Lookup(r.PathValue("digest"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such artifact set", Status: http.StatusNotFound})
			return
		}
		a := e.Artifact(r.PathValue("name"))
		if a == nil {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such artifact", Status: http.StatusNotFound})
			return
		}
		if strings.HasSuffix(a.Name, ".json") {
			w.Header().Set("Content-Type", "application/json")
		} else {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		}
		w.Header().Set("X-Content-SHA256", a.SHA256)
		w.Write(a.Bytes())
	})

	// Cluster routes exist only when the daemon runs as a coordinator;
	// a single-node daemon's HTTP surface is exactly the pre-cluster one.
	if c := m.Cluster(); c != nil {
		handle("POST /v1/cluster/nodes", func(w http.ResponseWriter, r *http.Request) {
			var req shard.RegisterRequest
			dec := json.NewDecoder(r.Body)
			dec.DisallowUnknownFields()
			if err := dec.Decode(&req); err != nil || req.Name == "" {
				writeJSON(w, http.StatusBadRequest, errorDoc{Error: "register needs a node name", Status: http.StatusBadRequest})
				return
			}
			writeJSON(w, http.StatusOK, c.Register(req.Name, req.PeerAddr))
		})

		handle("POST /v1/cluster/lease", func(w http.ResponseWriter, r *http.Request) {
			var req shard.LeaseRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad lease request", Status: http.StatusBadRequest})
				return
			}
			lease, ok, err := c.Lease(req.Node)
			switch {
			case errors.Is(err, shard.ErrUnknownNode):
				writeJSON(w, http.StatusNotFound, errorDoc{Error: err.Error(), Status: http.StatusNotFound})
			case err != nil:
				writeError(w, err)
			case !ok:
				w.WriteHeader(http.StatusNoContent) // no work right now; poll again
			default:
				writeJSON(w, http.StatusOK, lease)
			}
		})

		handle("POST /v1/cluster/complete", func(w http.ResponseWriter, r *http.Request) {
			var req shard.CompleteRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad complete request", Status: http.StatusBadRequest})
				return
			}
			err := c.Complete(req.Node, req.Task, req.Token, req.Result, req.Error)
			switch {
			case errors.Is(err, shard.ErrStaleLease):
				// The fencing token lost: another worker holds (or already
				// finished) this shard. 409 tells the zombie to drop it.
				writeJSON(w, http.StatusConflict, errorDoc{Error: err.Error(), Status: http.StatusConflict})
			case errors.Is(err, shard.ErrUnknownNode):
				writeJSON(w, http.StatusNotFound, errorDoc{Error: err.Error(), Status: http.StatusNotFound})
			case err != nil:
				writeError(w, err)
			default:
				writeJSON(w, http.StatusOK, shard.CompleteResponse{OK: true})
			}
		})

		handle("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, c.Stats())
		})

		handle("GET /v1/cluster/shards/{digest}", func(w http.ResponseWriter, r *http.Request) {
			set, ok := c.ShardSet(r.PathValue("digest"))
			if !ok {
				writeJSON(w, http.StatusNotFound, errorDoc{Error: "no retained shard set for digest", Status: http.StatusNotFound})
				return
			}
			writeJSON(w, http.StatusOK, set)
		})
	}

	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		doc := map[string]any{
			"ok":           true,
			"schema":       SchemaSpec,
			"jobs":         len(m.Jobs()),
			"cached":       m.Store().Len(),
			"methods":      MethodSlugs(),
			"recovered":    m.Recovered(),
			"breaker_open": m.BreakerOpen(),
			"draining":     m.Draining(),
		}
		if c := m.Cluster(); c != nil {
			st := c.Stats()
			doc["cluster"] = map[string]any{
				"workers":        st.Workers,
				"queue_depth":    st.QueueDepth,
				"steals":         st.Steals,
				"lease_expiries": st.LeaseExpiries,
			}
		}
		if p := m.Peers(); p != nil {
			doc["peers"] = p.Peers()
		}
		writeJSON(w, http.StatusOK, doc)
	})

	handle("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default().WritePrometheus(w)
	})

	return mux
}

// sseKeepAlive is the interval between SSE comment frames (": ping")
// sent while a stream is idle, so proxies and clients with read
// timeouts keep long-quiet streams open. Package-level so tests can
// shrink it.
var sseKeepAlive = 15 * time.Second

// serveEvents streams a job's span events as Server-Sent Events:
// replayed history first, then live events, then one "done" event
// carrying the terminal job document.
func serveEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorDoc{Error: "streaming unsupported", Status: http.StatusNotImplemented})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// The stream opens with its correlation id as a comment frame, so a
	// captured SSE transcript ties back to the request without headers.
	if id := RequestIDFrom(r.Context()); id != "" {
		fmt.Fprintf(w, ": request-id=%s\n\n", id)
		fl.Flush()
	}

	replay, ch, unsub := j.Subscribe()
	defer unsub()
	send := func(event string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}
	for _, ev := range replay {
		send("span", ev)
	}
	keepalive := time.NewTicker(sseKeepAlive)
	defer keepalive.Stop()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				send("done", j.View())
				return
			}
			send("span", ev)
		case <-keepalive.C:
			// Comment frame per the SSE spec: ignored by clients, but
			// enough traffic to defeat idle timeouts.
			fmt.Fprint(w, ": ping\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := HTTPStatus(err)
	if after, ok := RetryAfter(err); ok {
		// Whole seconds per RFC 9110; round up so "retry after 10ms"
		// doesn't become "retry immediately", and clamp to at least one
		// second — a zero hint invites an instant retry storm.
		secs := int(after / time.Second)
		if after%time.Second != 0 {
			secs++
		}
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, errorDoc{Error: err.Error(), Status: status})
}
