package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"stdcelltune/internal/obs"
	"stdcelltune/internal/service/cache"
)

// SchemaJob is the versioned job-document schema identifier.
const SchemaJob = "stdcelltune-job/1"

// Manager lifecycle errors; the HTTP layer maps both to 503.
var (
	ErrDraining  = errors.New("service: draining, not accepting jobs")
	ErrQueueFull = errors.New("service: job queue full")
)

// Job states.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Manager metrics, in the process-default registry next to the cache's.
var (
	jobsSubmitted = obs.Default().Counter("service.jobs_submitted")
	jobsDone      = obs.Default().Counter("service.jobs_done")
	jobsFailed    = obs.Default().Counter("service.jobs_failed")
	jobsCancelled = obs.Default().Counter("service.jobs_cancelled")
	jobTime       = obs.Default().Histogram("service.job_time")
)

// Job is one queued or executed pipeline request. All mutable state is
// guarded by mu; View snapshots it for the HTTP layer.
type Job struct {
	ID     string
	Spec   Spec   // normalized
	Digest string // Spec.Digest(), the cache key

	runCtx context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	status   Status
	outcome  string // cache outcome: "hit", "miss" or "shared"
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	entry    *cache.Entry
	events   []obs.SpanEvent
	subs     map[chan obs.SpanEvent]struct{}
}

// Err returns the job's terminal error, or nil.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Entry returns the job's sealed artifact entry once done, else nil.
func (j *Job) Entry() *cache.Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.entry
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel aborts the job: immediately when still queued, via context
// cancellation when running.
func (j *Job) Cancel() {
	j.cancel()
	j.mu.Lock()
	if j.status == StatusQueued {
		j.finish(StatusCancelled, "", nil, context.Canceled)
	}
	j.mu.Unlock()
}

// finish moves the job to a terminal state. Caller holds mu. Idempotent
// so a queued-cancel and the worker's own observation cannot double
// close.
func (j *Job) finish(st Status, outcome string, entry *cache.Entry, err error) {
	if j.status == StatusDone || j.status == StatusFailed || j.status == StatusCancelled {
		return
	}
	j.status, j.outcome, j.entry, j.err = st, outcome, entry, err
	j.finished = time.Now()
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	close(j.done)
	switch st {
	case StatusDone:
		jobsDone.Add(1)
	case StatusFailed:
		jobsFailed.Add(1)
	case StatusCancelled:
		jobsCancelled.Add(1)
	}
	if !j.started.IsZero() {
		jobTime.Observe(j.finished.Sub(j.started))
	}
}

// publish appends a span event to the job's history and fans it out to
// subscribers. A slow subscriber loses events rather than stalling the
// pipeline (its catch-up is the replay on resubscribe).
func (j *Job) publish(ev obs.SpanEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe returns the events so far plus a channel of future events.
// The channel closes when the job finishes; unsub releases it earlier.
func (j *Job) Subscribe() (replay []obs.SpanEvent, ch <-chan obs.SpanEvent, unsub func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]obs.SpanEvent(nil), j.events...)
	c := make(chan obs.SpanEvent, 64)
	if j.subs == nil { // terminal: deliver replay only, already closed stream
		close(c)
		return replay, c, func() {}
	}
	j.subs[c] = struct{}{}
	return replay, c, func() {
		j.mu.Lock()
		if _, ok := j.subs[c]; ok {
			delete(j.subs, c)
			close(c)
		}
		j.mu.Unlock()
	}
}

// ArtifactView is the wire form of one cached artifact.
type ArtifactView struct {
	Name   string `json:"name"`
	SHA256 string `json:"sha256"`
	Size   int    `json:"size_bytes"`
}

// JobView is the wire form of a job: the stdcelltune-job/1 document.
type JobView struct {
	Schema    string         `json:"schema"`
	ID        string         `json:"id"`
	Digest    string         `json:"digest"`
	Spec      Spec           `json:"spec"`
	Status    Status         `json:"status"`
	Outcome   string         `json:"cache_outcome,omitempty"`
	Error     string         `json:"error,omitempty"`
	HTTPCode  int            `json:"error_status,omitempty"`
	Created   time.Time      `json:"created"`
	Started   *time.Time     `json:"started,omitempty"`
	Finished  *time.Time     `json:"finished,omitempty"`
	Artifacts []ArtifactView `json:"artifacts,omitempty"`
	Events    int            `json:"events"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		Schema: SchemaJob, ID: j.ID, Digest: j.Digest, Spec: j.Spec,
		Status: j.status, Outcome: j.outcome, Created: j.created,
		Events: len(j.events),
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.err != nil {
		v.Error = j.err.Error()
		v.HTTPCode = HTTPStatus(j.err)
	}
	if j.entry != nil {
		for _, a := range j.entry.Artifacts {
			v.Artifacts = append(v.Artifacts, ArtifactView{Name: a.Name, SHA256: a.SHA256, Size: a.Size})
		}
	}
	return v
}

// ManagerOptions configures a Manager. The zero value is a sane daemon:
// one worker (the pipeline itself parallelizes on the robust pool), a
// 16-deep queue, the real pipeline as the compute function.
type ManagerOptions struct {
	// Workers is the number of concurrent pipeline executions; 0 means 1.
	Workers int
	// QueueDepth bounds the submitted-but-not-running backlog; 0 means 16.
	QueueDepth int
	// Run overrides the pipeline (tests inject fakes); nil means Run.
	Run func(context.Context, Spec) (map[string][]byte, error)
	// Trace enables per-job tracers whose span events feed the job's
	// SSE stream.
	Trace bool
}

// Manager owns the job queue and the artifact cache. One per daemon.
type Manager struct {
	store *cache.Store
	opts  ManagerOptions

	baseCtx  context.Context
	baseStop context.CancelFunc
	queue    chan *Job
	wg       sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	seq      int
	draining bool
}

// NewManager builds and starts a manager over the given cache store.
func NewManager(store *cache.Store, opts ManagerOptions) *Manager {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.Run == nil {
		opts.Run = Run
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		store:   store,
		opts:    opts,
		baseCtx: ctx, baseStop: stop,
		queue: make(chan *Job, opts.QueueDepth),
		jobs:  make(map[string]*Job),
	}
	obs.Default().GaugeFunc("service.queue_depth", func() float64 { return float64(len(m.queue)) })
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Store exposes the artifact cache (the HTTP artifact endpoints read it).
func (m *Manager) Store() *cache.Store { return m.store }

// Submit validates and enqueues a spec. The returned job is already
// registered and observable; its terminal state arrives asynchronously.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	norm := spec.Normalized()
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	m.seq++
	id := fmt.Sprintf("job-%d", m.seq)
	jobCtx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		ID: id, Spec: norm, Digest: norm.Digest(),
		cancel: cancel, done: make(chan struct{}),
		status: StatusQueued, created: time.Now(),
		subs: make(map[chan obs.SpanEvent]struct{}),
	}
	j.runCtx = jobCtx
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		cancel()
		return nil, ErrQueueFull
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.mu.Unlock()
	jobsSubmitted.Add(1)
	return j, nil
}

// Job returns a registered job by id.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs lists all registered jobs in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Drain stops accepting new jobs, cancels nothing, and waits for the
// in-flight and queued jobs to finish or for ctx to expire — the
// SIGTERM half of graceful shutdown. On ctx expiry the remaining jobs
// are cancelled hard.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	m.mu.Unlock()
	if !already {
		close(m.queue)
	}
	finished := make(chan struct{})
	go func() { m.wg.Wait(); close(finished) }()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		m.baseStop() // hard-cancel stragglers, then wait for them
		<-finished
		return ctx.Err()
	}
}

// worker drains the queue, executing one job at a time through the
// content-addressed cache's single-flight front.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.execute(j)
	}
}

func (m *Manager) execute(j *Job) {
	j.mu.Lock()
	if j.status != StatusQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()

	ctx := j.runCtx
	if m.opts.Trace {
		tr := obs.NewTracer(time.Now)
		tr.SetSink(j.publish)
		ctx = obs.WithTracer(ctx, tr)
	}
	entry, outcome, err := m.store.GetOrCompute(ctx, j.Digest, func(ctx context.Context) (map[string][]byte, error) {
		return m.opts.Run(ctx, j.Spec)
	})

	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err == nil:
		j.finish(StatusDone, outcome, entry, nil)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.finish(StatusCancelled, outcome, nil, err)
	default:
		j.finish(StatusFailed, outcome, nil, err)
	}
}

// Digests returns the cached digests sorted — the artifact listing.
func (m *Manager) Digests() []string {
	d := m.store.Digests()
	sort.Strings(d)
	return d
}
