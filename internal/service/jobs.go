package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"stdcelltune"
	"stdcelltune/internal/obs"
	"stdcelltune/internal/query"
	"stdcelltune/internal/service/cache"
	"stdcelltune/internal/service/journal"
	"stdcelltune/internal/service/shard"
)

// SchemaJob is the versioned job-document schema identifier.
const SchemaJob = "stdcelltune-job/1"

// Manager lifecycle errors; the HTTP layer maps both to 503.
var (
	ErrDraining  = errors.New("service: draining, not accepting jobs")
	ErrQueueFull = errors.New("service: job queue full")
)

// Job states.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// journalState maps a job status to its journal record state (the wire
// strings are identical by construction).
func journalState(st Status) journal.State { return journal.State(st) }

// Manager metrics, in the process-default registry next to the cache's.
var (
	jobsSubmitted = obs.Default().Counter("service.jobs_submitted")
	jobsDone      = obs.Default().Counter("service.jobs_done")
	jobsFailed    = obs.Default().Counter("service.jobs_failed")
	jobsCancelled = obs.Default().Counter("service.jobs_cancelled")
	jobsRecovered = obs.Default().Counter("service.jobs_recovered")
	jobPanics     = obs.Default().Counter("service.job_panics")
	// Job wall time on the high-resolution HDR histogram: the serving
	// tier quotes p99/p99.9 off this, where the old power-of-two buckets'
	// factor-of-two error was too coarse.
	jobTime = obs.Default().HDR("service.job_time")

	admitRateLimited = obs.Default().Counter("service.admit_rate_limited")
	admitQuota       = obs.Default().Counter("service.admit_quota_rejected")
	admitBreaker     = obs.Default().Counter("service.admit_breaker_open")
	breakerTrips     = obs.Default().Counter("service.breaker_trips")
)

// Job is one queued or executed pipeline request. All mutable state is
// guarded by mu; View snapshots it for the HTTP layer.
type Job struct {
	ID        string
	Spec      Spec   // normalized
	Digest    string // Spec.Digest(), the cache key
	Tenant    string // API-key header value, "" = anonymous
	RequestID string // X-Request-ID of the submitting request, "" when recovered/internal
	Recovered bool   // re-enqueued from the journal at startup

	runCtx context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// onTerminal is the manager's bookkeeping hook (journal terminal
	// record, tenant quota release, breaker verdict). Called exactly
	// once, with mu held; it must not call back into Job methods.
	onTerminal func(j *Job, st Status, outcome string, err error)

	mu       sync.Mutex
	status   Status
	outcome  string // cache outcome: "hit", "miss" or "shared"
	tracer   *obs.Tracer
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	entry    *cache.Entry
	events   []obs.SpanEvent
	subs     map[chan obs.SpanEvent]struct{}
}

// Err returns the job's terminal error, or nil.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Tracer returns the job's span tracer, nil until the job starts
// running or when tracing is disabled. The GET /v1/jobs/{id}/trace
// endpoint renders it as Chrome trace-event JSON.
func (j *Job) Tracer() *obs.Tracer {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tracer
}

// Entry returns the job's sealed artifact entry once done, else nil.
func (j *Job) Entry() *cache.Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.entry
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel aborts the job: immediately when still queued, via context
// cancellation when running.
func (j *Job) Cancel() {
	j.cancel()
	j.mu.Lock()
	if j.status == StatusQueued {
		j.finish(StatusCancelled, "", nil, context.Canceled)
	}
	j.mu.Unlock()
}

// finish moves the job to a terminal state. Caller holds mu. Idempotent
// so a queued-cancel and the worker's own observation cannot double
// close.
func (j *Job) finish(st Status, outcome string, entry *cache.Entry, err error) {
	if j.status == StatusDone || j.status == StatusFailed || j.status == StatusCancelled {
		return
	}
	j.status, j.outcome, j.entry, j.err = st, outcome, entry, err
	j.finished = time.Now()
	switch st {
	case StatusDone:
		jobsDone.Add(1)
	case StatusFailed:
		jobsFailed.Add(1)
	case StatusCancelled:
		jobsCancelled.Add(1)
	}
	if !j.started.IsZero() {
		jobTime.Observe(j.finished.Sub(j.started))
	}
	// The manager's bookkeeping (fsynced terminal journal record, tenant
	// quota release, breaker verdict) runs before Done() closes: anyone
	// who observes the job terminal may rely on the record being durable
	// and the admission slots free.
	if j.onTerminal != nil {
		j.onTerminal(j, st, outcome, err)
	}
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	close(j.done)
}

// publish appends a span event to the job's history and fans it out to
// subscribers. A slow subscriber loses events rather than stalling the
// pipeline (its catch-up is the replay on resubscribe).
func (j *Job) publish(ev obs.SpanEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe returns the events so far plus a channel of future events.
// The channel closes when the job finishes; unsub releases it earlier.
func (j *Job) Subscribe() (replay []obs.SpanEvent, ch <-chan obs.SpanEvent, unsub func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]obs.SpanEvent(nil), j.events...)
	c := make(chan obs.SpanEvent, 64)
	if j.subs == nil { // terminal: deliver replay only, already closed stream
		close(c)
		return replay, c, func() {}
	}
	j.subs[c] = struct{}{}
	return replay, c, func() {
		j.mu.Lock()
		if _, ok := j.subs[c]; ok {
			delete(j.subs, c)
			close(c)
		}
		j.mu.Unlock()
	}
}

// ArtifactView is the wire form of one cached artifact.
type ArtifactView struct {
	Name   string `json:"name"`
	SHA256 string `json:"sha256"`
	Size   int    `json:"size_bytes"`
}

// JobView is the wire form of a job: the stdcelltune-job/1 document.
type JobView struct {
	Schema    string         `json:"schema"`
	ID        string         `json:"id"`
	Digest    string         `json:"digest"`
	Spec      Spec           `json:"spec"`
	Status    Status         `json:"status"`
	Outcome   string         `json:"cache_outcome,omitempty"`
	RequestID string         `json:"request_id,omitempty"`
	Tenant    string         `json:"tenant,omitempty"`
	Recovered bool           `json:"recovered,omitempty"`
	Error     string         `json:"error,omitempty"`
	HTTPCode  int            `json:"error_status,omitempty"`
	Created   time.Time      `json:"created"`
	Started   *time.Time     `json:"started,omitempty"`
	Finished  *time.Time     `json:"finished,omitempty"`
	Artifacts []ArtifactView `json:"artifacts,omitempty"`
	Events    int            `json:"events"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		Schema: SchemaJob, ID: j.ID, Digest: j.Digest, Spec: j.Spec,
		Status: j.status, Outcome: j.outcome, Created: j.created,
		RequestID: j.RequestID, Tenant: j.Tenant, Recovered: j.Recovered,
		Events: len(j.events),
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.err != nil {
		v.Error = j.err.Error()
		v.HTTPCode = HTTPStatus(j.err)
	}
	if j.entry != nil {
		for _, a := range j.entry.Artifacts {
			v.Artifacts = append(v.Artifacts, ArtifactView{Name: a.Name, SHA256: a.SHA256, Size: a.Size})
		}
	}
	return v
}

// ManagerOptions configures a Manager. The zero value is a sane daemon:
// one worker (the pipeline itself parallelizes on the robust pool), a
// 16-deep queue, the real pipeline as the compute function, no
// durability, no admission limits.
type ManagerOptions struct {
	// Workers is the number of concurrent pipeline executions; 0 means 1.
	Workers int
	// QueueDepth bounds the submitted-but-not-running backlog; 0 means 16.
	QueueDepth int
	// Run overrides the pipeline (tests inject fakes); nil means Run.
	Run func(context.Context, Spec) (map[string][]byte, error)
	// Trace enables per-job tracers whose span events feed the job's
	// SSE stream.
	Trace bool

	// Journal, when non-nil, makes every job state transition durable:
	// accepts and terminal states are fsynced before the submission
	// returns / the job is observed terminal. A failed accept append
	// rejects the submission — durability is the 202 contract.
	Journal *journal.Journal
	// Recovered is the journal replay from Journal's Open: its pending
	// (accepted-or-running) jobs are re-registered and re-enqueued
	// before the manager accepts traffic.
	Recovered []journal.Record

	// MaxRPS is the global submission rate limit in jobs/sec; 0 means
	// unlimited. Rejections are ErrRateLimited with a Retry-After hint.
	MaxRPS float64
	// Burst is the rate limiter's bucket size; 0 means ceil(MaxRPS),
	// minimum 1.
	Burst int
	// TenantQuota bounds concurrently active (queued+running) jobs per
	// tenant (X-API-Key header); 0 means unlimited.
	TenantQuota int
	// BreakerK trips a spec digest's circuit after K consecutive
	// poison failures (panics or quarantine errors); 0 disables the
	// breaker.
	BreakerK int
	// BreakerCooldown is how long a tripped digest stays open before
	// one half-open probe is admitted; 0 means 30s.
	BreakerCooldown time.Duration
	// Now injects the admission clock (tests); nil means time.Now.
	Now func() time.Time

	// Cluster, when non-nil, is the shard coordinator this daemon hosts:
	// the Handler mounts the /v1/cluster routes over it and healthz
	// reports its fleet snapshot. The pipeline that distributes work to
	// it is wired separately (see Pipeline), keeping the queue tier and
	// the compute tier independently testable.
	Cluster *shard.Coordinator
	// Peers, when non-nil, is the peer-cache client whose registered
	// nodes healthz reports; worker registrations that advertise an
	// artifact address are added to it via the coordinator's OnRegister
	// hook.
	Peers *PeerClient
}

// Manager owns the job queue and the artifact cache. One per daemon.
type Manager struct {
	store  *cache.Store
	opts   ManagerOptions
	jnl    *journal.Journal
	bucket *tokenBucket
	brk    *breaker

	baseCtx  context.Context
	baseStop context.CancelFunc
	queue    chan *Job
	wg       sync.WaitGroup

	mu           sync.Mutex
	jobs         map[string]*Job
	order        []string
	seq          int
	draining     bool
	tenantActive map[string]int
	recovered    int

	// qstores caches decoded query stores per library digest (bounded;
	// see queryStoreCacheSize).
	qstores *queryStores
}

// NewManager builds and starts a manager over the given cache store.
// When opts carries a journal replay, the pending jobs are re-enqueued
// (ahead of the queue-depth budget) before any worker starts, so
// recovery work is first in line after a restart.
func NewManager(store *cache.Store, opts ManagerOptions) *Manager {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.Run == nil {
		opts.Run = Run
	}
	pending := journal.Pending(opts.Recovered)
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		store:   store,
		opts:    opts,
		jnl:     opts.Journal,
		baseCtx: ctx, baseStop: stop,
		queue:        make(chan *Job, opts.QueueDepth+len(pending)),
		jobs:         make(map[string]*Job),
		tenantActive: make(map[string]int),
		qstores:      newQueryStores(),
	}
	if opts.MaxRPS > 0 {
		m.bucket = newTokenBucket(opts.MaxRPS, opts.Burst, opts.Now)
	}
	if opts.BreakerK > 0 {
		m.brk = newBreaker(opts.BreakerK, opts.BreakerCooldown, opts.Now)
	}
	obs.Default().GaugeFunc("service.queue_depth", func() float64 { return float64(len(m.queue)) })
	obs.Default().GaugeFunc("service.breaker_open", func() float64 { return float64(m.brk.openCount()) })
	m.recover(pending)
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// recover re-registers and re-enqueues the journal's pending jobs under
// their original IDs. Idempotency comes from the content-addressed
// cache: a recovered spec whose artifacts persisted replays the exact
// cold bytes without recomputing; one that didn't recomputes them —
// byte-identical either way. A pending record whose spec no longer
// validates is journaled failed rather than replayed forever.
func (m *Manager) recover(pending []journal.Record) {
	log := obs.Log()
	for _, rec := range pending {
		// Keep new job IDs clear of recovered ones.
		if n, err := strconv.Atoi(strings.TrimPrefix(rec.Job, "job-")); err == nil && n > m.seq {
			m.seq = n
		}
		var spec Spec
		specErr := json.Unmarshal(rec.Spec, &spec)
		if specErr == nil {
			specErr = spec.Validate()
		}
		if specErr != nil {
			log.Warn("recovery: dropping journaled job with invalid spec", "job", rec.Job, "err", specErr)
			m.journalTerminal(rec.Job, rec.Digest, StatusFailed, "", fmt.Errorf("%w: %v", ErrBadSpec, specErr))
			continue
		}
		norm := spec.Normalized()
		jobCtx, cancel := context.WithCancel(m.baseCtx)
		j := &Job{
			ID: rec.Job, Spec: norm, Digest: norm.Digest(),
			Tenant: rec.Tenant, Recovered: true,
			cancel: cancel, done: make(chan struct{}),
			status: StatusQueued, created: time.Now(),
			subs:       make(map[chan obs.SpanEvent]struct{}),
			onTerminal: m.jobTerminal,
		}
		j.runCtx = jobCtx
		if rec.Digest != "" && rec.Digest != j.Digest {
			log.Warn("recovery: journaled digest disagrees with spec, recomputed", "job", rec.Job, "journaled", rec.Digest, "computed", j.Digest)
		}
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
		m.tenantActive[j.Tenant]++
		m.queue <- j // capacity reserved for every pending record
		m.recovered++
		jobsRecovered.Add(1)
	}
	if m.recovered > 0 {
		log.Info("recovery: re-enqueued journaled jobs", "jobs", m.recovered)
	}
}

// Recovered reports how many journaled jobs this manager re-enqueued at
// startup.
func (m *Manager) Recovered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovered
}

// BreakerOpen reports how many spec digests are currently tripped open.
func (m *Manager) BreakerOpen() int { return m.brk.openCount() }

// Store exposes the artifact cache (the HTTP artifact endpoints read it).
func (m *Manager) Store() *cache.Store { return m.store }

// Cluster exposes the shard coordinator, nil when this daemon does not
// host one (the Handler gates the /v1/cluster routes on it).
func (m *Manager) Cluster() *shard.Coordinator { return m.opts.Cluster }

// Peers exposes the peer-cache client, nil when no peer tier is wired.
func (m *Manager) Peers() *PeerClient { return m.opts.Peers }

// journalTerminal appends a terminal record (fsynced) for a job id.
// Best-effort once the job already finished in memory: a journal write
// failure costs one redundant idempotent replay after a crash, not
// correctness.
func (m *Manager) journalTerminal(id, dig string, st Status, outcome string, err error) {
	if m.jnl == nil {
		return
	}
	rec := journal.Record{
		Job: id, State: journalState(st), Digest: dig, Outcome: outcome,
		Time: time.Now().UTC().Format(time.RFC3339Nano),
	}
	if err != nil {
		rec.Error = err.Error()
	}
	if aerr := m.jnl.Append(rec, true); aerr != nil {
		obs.Log().Warn("journal: terminal append failed", "job", id, "state", st, "err", aerr)
	}
}

// jobTerminal is the Job.onTerminal hook: journal the terminal state,
// release the tenant's quota slot, and feed the breaker its verdict.
// Called with the job's mu held — it must stay off Job methods.
func (m *Manager) jobTerminal(j *Job, st Status, outcome string, err error) {
	m.journalTerminal(j.ID, j.Digest, st, outcome, err)
	m.mu.Lock()
	if m.tenantActive[j.Tenant] > 0 {
		m.tenantActive[j.Tenant]--
		if m.tenantActive[j.Tenant] == 0 {
			delete(m.tenantActive, j.Tenant)
		}
	}
	m.mu.Unlock()
	switch {
	case st == StatusDone:
		m.brk.success(j.Digest)
	case st == StatusFailed && (errors.Is(err, ErrJobPanic) || errors.Is(err, stdcelltune.ErrQuarantined)):
		if m.brk.failure(j.Digest) {
			breakerTrips.Add(1)
			obs.Log().Warn("breaker: tripped spec digest", "digest", j.Digest, "err", err)
		}
	default:
		// Cancellations and non-poison failures carry no poison verdict;
		// just release a half-open probe if this job was one.
		m.brk.settle(j.Digest)
	}
}

// Submit validates and enqueues a spec on behalf of a tenant (the
// X-API-Key header value; empty is the anonymous tenant). The returned
// job is already registered, durable (when a journal is configured,
// the accepted record is fsynced before Submit returns) and
// observable; its terminal state arrives asynchronously.
//
// Admission order: drain state, global rate limit, per-digest circuit
// breaker, per-tenant quota, queue capacity — cheapest and most global
// first, so an overloaded daemon spends no pool time deciding.
func (m *Manager) Submit(spec Spec, tenant string) (*Job, error) {
	return m.SubmitTagged(spec, tenant, "")
}

// SubmitTagged is Submit carrying the originating request's
// X-Request-ID, which then appears on the job document, the accept log
// line and the job's trace spans — the correlation chain.
func (m *Manager) SubmitTagged(spec Spec, tenant, requestID string) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	norm := spec.Normalized()
	dig := norm.Digest()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	if ok, retry := m.bucket.take(); !ok {
		admitRateLimited.Add(1)
		return nil, withRetryAfter(ErrRateLimited, retry)
	}
	probeHeld := false
	if ok, retry := m.brk.allow(dig); !ok {
		admitBreaker.Add(1)
		return nil, withRetryAfter(fmt.Errorf("%w %s", ErrCircuitOpen, dig), retry)
	} else {
		probeHeld = true // allow may have admitted a half-open probe
	}
	release := func() { // undo the probe hold on any later rejection
		if probeHeld {
			m.brk.settle(dig)
		}
	}
	if m.opts.TenantQuota > 0 && m.tenantActive[tenant] >= m.opts.TenantQuota {
		release()
		admitQuota.Add(1)
		return nil, fmt.Errorf("%w (tenant %q, limit %d)", ErrTenantQuota, tenant, m.opts.TenantQuota)
	}
	if len(m.queue) >= cap(m.queue) {
		release()
		return nil, ErrQueueFull
	}
	m.seq++
	id := fmt.Sprintf("job-%d", m.seq)
	if m.jnl != nil {
		rawSpec, err := json.Marshal(norm)
		if err != nil {
			release()
			return nil, fmt.Errorf("service: encode spec for journal: %w", err)
		}
		rec := journal.Record{
			Job: id, State: journal.StateAccepted, Digest: dig,
			Spec: rawSpec, Tenant: tenant,
			Time: time.Now().UTC().Format(time.RFC3339Nano),
		}
		if err := m.jnl.Append(rec, true); err != nil {
			release()
			m.seq--
			return nil, fmt.Errorf("service: journal accept: %w", err)
		}
	}
	jobCtx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		ID: id, Spec: norm, Digest: dig, Tenant: tenant, RequestID: requestID,
		cancel: cancel, done: make(chan struct{}),
		status: StatusQueued, created: time.Now(),
		subs:       make(map[chan obs.SpanEvent]struct{}),
		onTerminal: m.jobTerminal,
	}
	j.runCtx = jobCtx
	m.queue <- j // guaranteed room: length checked above under mu
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.tenantActive[tenant]++
	jobsSubmitted.Add(1)
	obs.Log().Info("job accepted", "job", id, "digest", dig, "tenant", tenant, "request_id", requestID)
	return j, nil
}

// Job returns a registered job by id.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs lists all registered jobs in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// JobsPage returns up to limit jobs starting at the opaque cursor's
// position in the accept sequence, plus the cursor addressing the next
// page ("" when exhausted). The accept sequence is append-only, so a
// cursor taken now stays valid — and stable — while new jobs arrive.
func (m *Manager) JobsPage(limit int, cursor string) ([]*Job, string, error) {
	start := 0
	if cursor != "" {
		off, err := query.DecodeCursor(cursor)
		if err != nil {
			return nil, "", err
		}
		start = off
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if start > len(m.order) {
		start = len(m.order)
	}
	end := len(m.order)
	if limit > 0 && start+limit < end {
		end = start + limit
	}
	out := make([]*Job, 0, end-start)
	for _, id := range m.order[start:end] {
		out = append(out, m.jobs[id])
	}
	next := ""
	if end < len(m.order) {
		next = query.EncodeCursor(end)
	}
	return out, next, nil
}

// Draining reports whether the manager has stopped accepting jobs.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain stops accepting new jobs, cancels nothing, and waits for the
// in-flight and queued jobs to finish or for ctx to expire — the
// SIGTERM half of graceful shutdown. On ctx expiry the remaining jobs
// are cancelled hard.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	m.mu.Unlock()
	if !already {
		close(m.queue)
	}
	finished := make(chan struct{})
	go func() { m.wg.Wait(); close(finished) }()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		m.baseStop() // hard-cancel stragglers, then wait for them
		<-finished
		return ctx.Err()
	}
}

// worker drains the queue, executing one job at a time through the
// content-addressed cache's single-flight front.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.execute(j)
	}
}

func (m *Manager) execute(j *Job) {
	var tr *obs.Tracer
	if m.opts.Trace {
		tr = obs.NewTracer(time.Now)
		tr.SetSink(j.publish)
	}
	j.mu.Lock()
	if j.status != StatusQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.tracer = tr
	j.mu.Unlock()

	if m.jnl != nil {
		// Running records ride the page cache: losing one just re-runs
		// an idempotent job, so no fsync on the hot path.
		rec := journal.Record{
			Job: j.ID, State: journal.StateRunning, Digest: j.Digest,
			Time: time.Now().UTC().Format(time.RFC3339Nano),
		}
		if err := m.jnl.Append(rec, false); err != nil {
			obs.Log().Warn("journal: running append failed", "job", j.ID, "err", err)
		}
	}

	ctx := j.runCtx
	var root *obs.Span
	if tr != nil {
		ctx = obs.WithTracer(ctx, tr)
		// The root span carries the correlation chain: API clients see the
		// same request_id on the job document, the accept log line, the
		// SSE stream and this span in the Chrome trace.
		root = tr.Start("job", "service", "job", j.ID, "digest", j.Digest, "request_id", j.RequestID)
	}
	entry, outcome, err := m.store.GetOrCompute(ctx, j.Digest, func(ctx context.Context) (blobs map[string][]byte, err error) {
		// A panicking pipeline must not take the worker down: the panic
		// becomes a typed failure the breaker can count.
		defer func() {
			if r := recover(); r != nil {
				jobPanics.Add(1)
				err = fmt.Errorf("%w: %v", ErrJobPanic, r)
			}
		}()
		return m.opts.Run(ctx, j.Spec)
	})
	root.Set("cache_outcome", outcome)
	root.End()

	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err == nil:
		j.finish(StatusDone, outcome, entry, nil)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.finish(StatusCancelled, outcome, nil, err)
	default:
		j.finish(StatusFailed, outcome, nil, err)
	}
}

// Digests returns the cached digests sorted — the artifact listing.
func (m *Manager) Digests() []string {
	d := m.store.Digests()
	sort.Strings(d)
	return d
}
