package service

import (
	"errors"
	"strings"
	"testing"
)

// TestSpecDigestGolden pins the canonical digest of the default request.
// This hash is the cache key of the headline experiment; if it moves,
// every persisted cache entry is orphaned, so a change here must be a
// deliberate schema bump (SchemaSpec), never an accident.
func TestSpecDigestGolden(t *testing.T) {
	const want = "sha256:3a4b749878a8516bedd1623b3d4af46da28da83bedcd89f12cb853f7ee4b9221"
	if got := (Spec{}).Digest(); got != want {
		t.Fatalf("default spec digest drifted:\n got  %s\n want %s", got, want)
	}
}

// TestSpecNormalizationSharesDigest proves `{}` and the spelled-out
// defaults are the same request: one cache entry, not two.
func TestSpecNormalizationSharesDigest(t *testing.T) {
	explicit := Spec{
		Schema: SchemaSpec, Corner: "typical", Design: "mcu",
		Instances: 50, Seed: 1, Method: "sigma-ceiling",
		Bound: 0.02, ClockNS: 5.0,
	}
	if got, want := explicit.Digest(), (Spec{}).Digest(); got != want {
		t.Fatalf("explicit defaults digest %s != zero-spec digest %s", got, want)
	}
}

// TestSpecDigestSensitivity: every semantic field must perturb the
// digest — a field the digest ignores would alias distinct requests
// onto one cache entry.
func TestSpecDigestSensitivity(t *testing.T) {
	base := Spec{}.Digest()
	variants := map[string]Spec{
		"corner":    {Corner: "fast"},
		"design":    {Design: "mcu-small"},
		"instances": {Instances: 10},
		"seed":      {Seed: 7},
		"method":    {Method: "cell-load-slope"},
		"bound":     {Bound: 0.01},
		"clock":     {ClockNS: 6.5},
		"rho":       {Rho: 0.3},
	}
	seen := map[string]string{base: "default"}
	for name, s := range variants {
		d := s.Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("variant %q collides with %q: %s", name, prev, d)
		}
		seen[d] = name
	}
}

func TestSpecValidate(t *testing.T) {
	good := []Spec{
		{},
		{Schema: SchemaSpec},
		{Corner: "slow", Design: "mcu-small", Method: "cell-slew-slope", Bound: 0.05},
		{Instances: 2, Seed: -3, Rho: 1},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("good[%d] rejected: %v", i, err)
		}
	}
	bad := []Spec{
		{Schema: "stdcelltune-api/0"},
		{Corner: "nominal"},
		{Design: "cpu"},
		{Method: "sigma ceiling"}, // the display name is not the slug
		{Instances: 1},
		{Bound: -0.01},
		{ClockNS: -1},
		{Rho: 1.5},
	}
	for i, s := range bad {
		err := s.Validate()
		if err == nil {
			t.Errorf("bad[%d] accepted: %+v", i, s)
			continue
		}
		if !errors.Is(err, ErrBadSpec) {
			t.Errorf("bad[%d]: error does not wrap ErrBadSpec: %v", i, err)
		}
	}
}

// TestMethodSlugsRoundTrip: every paper method has a slug and the slug
// maps back to it.
func TestMethodSlugsRoundTrip(t *testing.T) {
	slugs := MethodSlugs()
	if len(slugs) != 5 {
		t.Fatalf("want 5 method slugs, got %v", slugs)
	}
	for _, slug := range slugs {
		if strings.ContainsAny(slug, " /") {
			t.Errorf("slug %q is not URL-safe", slug)
		}
		m, ok := methodFromSlug(slug)
		if !ok {
			t.Fatalf("slug %q does not map back", slug)
		}
		if got := MethodSlug(m); got != slug {
			t.Errorf("round trip %q -> %v -> %q", slug, m, got)
		}
	}
}
