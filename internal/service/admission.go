package service

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// Admission errors. The HTTP layer maps the first two to 429 (with a
// Retry-After header when the error carries one) and the breaker to 503
// — the spec is well-formed, the service is just refusing to burn pool
// time on it right now.
var (
	ErrRateLimited = errors.New("service: rate limited")
	ErrTenantQuota = errors.New("service: tenant concurrent-job quota exceeded")
	ErrCircuitOpen = errors.New("service: circuit open for spec digest")
)

// ErrJobPanic marks a pipeline panic caught by the manager; the breaker
// counts it as a poison signal alongside quarantine failures.
var ErrJobPanic = errors.New("service: job panicked")

// retryAfterError decorates an admission error with the earliest time a
// retry could succeed. errors.Is still sees the wrapped sentinel; the
// HTTP layer turns After into a Retry-After header.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.err, e.after.Round(time.Millisecond))
}

func (e *retryAfterError) Unwrap() error { return e.err }

func withRetryAfter(err error, after time.Duration) error {
	if after < time.Millisecond {
		after = time.Millisecond
	}
	return &retryAfterError{err: err, after: after}
}

// RetryAfter extracts the retry hint from an admission error, if any.
func RetryAfter(err error) (time.Duration, bool) {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return ra.after, true
	}
	return 0, false
}

// tokenBucket is the global submission rate limiter: rate tokens/sec
// refill up to burst; each accepted submission takes one. Zero rate
// means unlimited. The clock is injected so tests are wall-time free.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	if now == nil {
		now = time.Now
	}
	if burst <= 0 {
		burst = int(math.Max(1, math.Ceil(rate)))
	}
	b := &tokenBucket{rate: rate, burst: float64(burst), now: now}
	b.tokens = b.burst
	b.last = now()
	return b
}

// take consumes one token if available; otherwise it reports how long
// until one accrues.
func (b *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	if b == nil || b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// breaker is the per-spec-digest circuit breaker: k consecutive poison
// failures (panic or quarantine) trip the digest open for cooldown;
// after cooling, exactly one probe is admitted (half-open) — its
// success closes the circuit, its failure re-trips it. Healthy digests
// carry no state at all.
type breaker struct {
	k        int
	cooldown time.Duration
	now      func() time.Time

	mu     sync.Mutex
	states map[string]*breakerState
}

type breakerState struct {
	fails     int
	openUntil time.Time // zero while closed/counting
	probing   bool      // one half-open probe is in flight
}

func newBreaker(k int, cooldown time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &breaker{k: k, cooldown: cooldown, now: now, states: make(map[string]*breakerState)}
}

// allow decides whether a submission for dig may enter the pool.
func (b *breaker) allow(dig string) (ok bool, retryAfter time.Duration) {
	if b == nil || b.k <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st, exists := b.states[dig]
	if !exists || st.openUntil.IsZero() {
		return true, 0
	}
	now := b.now()
	if now.Before(st.openUntil) {
		return false, st.openUntil.Sub(now)
	}
	if st.probing {
		// A probe is already in flight; hold further traffic until it
		// settles.
		return false, b.cooldown
	}
	st.probing = true
	return true, 0
}

// success clears the digest's failure history (and closes a half-open
// circuit).
func (b *breaker) success(dig string) {
	if b == nil || b.k <= 0 {
		return
	}
	b.mu.Lock()
	delete(b.states, dig)
	b.mu.Unlock()
}

// failure records a poison failure; it reports whether this one tripped
// (or re-tripped) the circuit.
func (b *breaker) failure(dig string) (tripped bool) {
	if b == nil || b.k <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[dig]
	if st == nil {
		st = &breakerState{}
		b.states[dig] = st
	}
	st.fails++
	probeFailed := st.probing
	st.probing = false
	if st.fails >= b.k || probeFailed {
		st.openUntil = b.now().Add(b.cooldown)
		return true
	}
	return false
}

// settle releases a half-open probe without a verdict (the probe job
// was cancelled, or never made it into the queue), so the circuit can
// admit the next probe after its cooldown.
func (b *breaker) settle(dig string) {
	if b == nil || b.k <= 0 {
		return
	}
	b.mu.Lock()
	if st := b.states[dig]; st != nil {
		st.probing = false
	}
	b.mu.Unlock()
}

// openCount reports how many digests are currently tripped open — a
// health-surface number.
func (b *breaker) openCount() int {
	if b == nil || b.k <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	now := b.now()
	for _, st := range b.states {
		if !st.openUntil.IsZero() && now.Before(st.openUntil) {
			n++
		}
	}
	return n
}
