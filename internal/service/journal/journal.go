// Package journal is the tuning daemon's write-ahead job journal: the
// durable record that makes a crash lose no accepted work. Every job
// state transition (accepted -> running -> done/failed/cancelled) is
// appended to one file under the daemon's -statedir as a
// length-prefixed, CRC-checksummed JSON record; accepts and terminal
// states are fsynced before the caller proceeds, so "the client got
// 202" implies "the journal knows".
//
// Durability contract, precisely:
//
//   - A job whose Submit returned success (accepted record synced) is
//     either terminal in the journal or re-enqueued on restart. Never
//     silently lost.
//   - A torn tail — the half-written record a crash mid-append leaves —
//     is detected by framing/CRC and truncated cleanly on open; every
//     record before it survives intact. Replay never guesses: the
//     first invalid byte ends the journal.
//   - Replayed jobs are idempotent through the content-addressed
//     artifact cache: a recovered spec whose artifacts persisted
//     replays the exact cold bytes; one that didn't recomputes them —
//     byte-identical either way, because artifacts are a pure function
//     of the spec digest.
//
// On-disk framing per record:
//
//	[4-byte big-endian payload length][4-byte big-endian CRC-32 (IEEE) of payload][payload JSON]
//
// Open replays the existing file, truncates any torn tail, then
// compacts: terminal jobs' records are dropped and the pending jobs'
// accepted records are rewritten to a temp file that is fsynced and
// renamed into place, so the journal's size is bounded by the live job
// set across restarts, not by history.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"stdcelltune/internal/obs"
	"stdcelltune/internal/service/chaos"
)

// Schema is the versioned record schema identifier; cmd/obscheck's
// -journal validator enforces it.
const Schema = "stdcelltune-journal/1"

// FileName is the journal file under the daemon's state directory.
const FileName = "jobs.wal"

// MaxRecord bounds one record's payload; a framed length beyond it is
// corruption, not a record.
const MaxRecord = 1 << 20

// headerLen is the per-record framing overhead (length + CRC).
const headerLen = 8

// State is a journaled job state.
type State string

const (
	StateAccepted  State = "accepted"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Valid reports whether s is one of the five journaled states.
func (s State) Valid() bool {
	switch s {
	case StateAccepted, StateRunning, StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Terminal reports whether s ends a job.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Record is one journaled state transition. Spec stays raw JSON here so
// the journal does not depend on the service package's request type;
// the manager round-trips it losslessly.
type Record struct {
	Schema  string          `json:"schema"`
	Seq     uint64          `json:"seq"`
	Job     string          `json:"job"`
	State   State           `json:"state"`
	Digest  string          `json:"digest,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
	Tenant  string          `json:"tenant,omitempty"`
	Time    string          `json:"time,omitempty"` // RFC3339Nano, writer's clock
	Outcome string          `json:"outcome,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// Journal metrics, in the process-default registry beside the service
// and cache counters.
var (
	recordsAppended   = obs.Default().Counter("journal.records_appended")
	recordsReplayed   = obs.Default().Counter("journal.records_replayed")
	tornTailTruncated = obs.Default().Counter("journal.torn_tail_truncated")
)

// CorruptError reports where and why a replay stopped early. It is a
// diagnosis, not a failure: Open truncates at Offset and continues.
type CorruptError struct {
	Offset int64  // byte offset of the first invalid record
	Reason string // human-readable cause
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("journal: invalid record at byte %d: %s", e.Offset, e.Reason)
}

// Replay decodes records from raw journal bytes. It returns the records
// up to the first invalid byte, the length of that valid prefix, and a
// *CorruptError describing the torn or corrupt tail (nil when the whole
// buffer parses). Replay never panics on any input — the fuzz target
// FuzzReplay pins that — and Replay(data[:valid]) always returns the
// same records with a nil error.
func Replay(data []byte) (recs []Record, valid int64, err error) {
	off := int64(0)
	for int64(len(data))-off > 0 {
		rest := data[off:]
		if len(rest) < headerLen {
			return recs, off, &CorruptError{Offset: off, Reason: fmt.Sprintf("torn header: %d trailing bytes", len(rest))}
		}
		n := binary.BigEndian.Uint32(rest)
		if n == 0 || n > MaxRecord {
			return recs, off, &CorruptError{Offset: off, Reason: fmt.Sprintf("implausible record length %d", n)}
		}
		if len(rest) < headerLen+int(n) {
			return recs, off, &CorruptError{Offset: off, Reason: fmt.Sprintf("torn record: %d of %d payload bytes", len(rest)-headerLen, n)}
		}
		payload := rest[headerLen : headerLen+int(n)]
		if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(rest[4:]); got != want {
			return recs, off, &CorruptError{Offset: off, Reason: fmt.Sprintf("checksum mismatch (%08x != %08x)", got, want)}
		}
		var rec Record
		if uerr := json.Unmarshal(payload, &rec); uerr != nil {
			return recs, off, &CorruptError{Offset: off, Reason: "payload not a record: " + uerr.Error()}
		}
		if rec.Schema != Schema {
			return recs, off, &CorruptError{Offset: off, Reason: fmt.Sprintf("schema %q, want %q", rec.Schema, Schema)}
		}
		if !rec.State.Valid() || rec.Job == "" {
			return recs, off, &CorruptError{Offset: off, Reason: fmt.Sprintf("malformed record (job %q, state %q)", rec.Job, rec.State)}
		}
		recs = append(recs, rec)
		off += headerLen + int64(n)
	}
	return recs, off, nil
}

// Pending reduces replayed records to the jobs that were accepted or
// running when the journal ended — the re-enqueue set. Each returned
// record is the job's accepted record (the one carrying the spec), in
// first-accepted order.
func Pending(recs []Record) []Record {
	accepted := make(map[string]Record, len(recs))
	terminal := make(map[string]bool, len(recs))
	var order []string
	for _, r := range recs {
		switch {
		case r.State == StateAccepted:
			if _, ok := accepted[r.Job]; !ok {
				order = append(order, r.Job)
			}
			accepted[r.Job] = r
			delete(terminal, r.Job) // a re-accept (compaction) reopens the job
		case r.State.Terminal():
			terminal[r.Job] = true
		}
	}
	out := make([]Record, 0, len(order))
	for _, id := range order {
		if !terminal[id] {
			out = append(out, accepted[id])
		}
	}
	return out
}

// Journal is an open, appendable job journal. Safe for concurrent use.
type Journal struct {
	path string

	mu  sync.Mutex
	f   *os.File
	seq uint64
}

// Open replays dir/jobs.wal (creating dir as needed), truncates any
// torn tail, compacts terminal history away, and returns the journal
// opened for append plus every replayed record. A torn tail is counted
// and logged, never fatal; only I/O errors are.
func Open(dir string) (*Journal, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	path := filepath.Join(dir, FileName)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	recs, valid, rerr := Replay(data)
	if rerr != nil {
		tornTailTruncated.Add(1)
		obs.Log().Warn("journal: truncating invalid tail", "path", path, "valid_bytes", valid, "dropped_bytes", int64(len(data))-valid, "err", rerr)
	}
	recordsReplayed.Add(int64(len(recs)))

	j := &Journal{path: path}
	for _, r := range recs {
		if r.Seq > j.seq {
			j.seq = r.Seq
		}
	}

	// Compact: rewrite only the pending jobs' accepted records, fsync,
	// rename into place. This both truncates any torn tail and bounds
	// the file by the live job set. The rename is the commit point; a
	// crash anywhere before it leaves the old file intact.
	tmp := path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range Pending(recs) {
		j.seq++
		r.Seq = j.seq
		frame, err := encode(r)
		if err != nil {
			tf.Close()
			return nil, nil, err
		}
		if _, err := tf.Write(frame); err != nil {
			tf.Close()
			return nil, nil, err
		}
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return nil, nil, err
	}
	if err := tf.Close(); err != nil {
		return nil, nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, nil, err
	}
	syncDir(dir)

	j.f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return j, recs, nil
}

// encode frames one record: length, CRC, payload.
func encode(r Record) ([]byte, error) {
	r.Schema = Schema
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	if len(payload) > MaxRecord {
		return nil, fmt.Errorf("journal: record too large (%d bytes)", len(payload))
	}
	frame := make([]byte, headerLen+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[headerLen:], payload)
	return frame, nil
}

// Append journals one state transition. syncNow forces the record to
// stable storage before returning — the accept and terminal paths use
// it; the running transition rides the page cache (losing it merely
// re-runs an idempotent job).
//
// The chaos points "journal.<state>.pre-write", "journal.<state>.write"
// (torn) and "journal.<state>.pre-sync" instrument the three moments a
// crash distinguishes.
func (j *Journal) Append(rec Record, syncNow bool) error {
	if d := chaos.At("journal." + string(rec.State) + ".pre-write"); d.Crash {
		return chaos.ErrCrash
	} else if d.Err != nil {
		return d.Err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	rec.Seq = j.seq
	frame, err := encode(rec)
	if err != nil {
		return err
	}
	if d := chaos.At("journal." + string(rec.State) + ".write"); d.Torn {
		// Torn write: a prefix lands (never the whole frame), then the
		// process dies. Replay on the next open must truncate it.
		cut := int(d.Frac * float64(len(frame)))
		if cut >= len(frame) {
			cut = len(frame) - 1
		}
		j.f.Write(frame[:cut])
		j.f.Sync() // make the torn prefix as durable as a real crash might
		return chaos.Crashed()
	} else if d.Crash {
		return chaos.ErrCrash // dead process: not one byte of this frame lands
	} else if d.Err != nil {
		return d.Err
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if syncNow {
		if d := chaos.At("journal." + string(rec.State) + ".pre-sync"); d.Crash {
			return chaos.ErrCrash
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	recordsAppended.Add(1)
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Path returns the journal file path (obscheck -journal reads it).
func (j *Journal) Path() string { return j.path }

// syncDir fsyncs a directory so a rename within it is durable.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
