package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"stdcelltune/internal/service/chaos"
)

func mustAppend(t *testing.T, j *Journal, rec Record, sync bool) {
	t.Helper()
	if err := j.Append(rec, sync); err != nil {
		t.Fatalf("append %s/%s: %v", rec.Job, rec.State, err)
	}
}

func openT(t *testing.T, dir string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(dir)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	t.Cleanup(func() { j.Close() })
	return j, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs := openT(t, dir)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	spec := json.RawMessage(`{"design":"mcu-small","instances":3}`)
	mustAppend(t, j, Record{Job: "job-1", State: StateAccepted, Digest: "sha256:aa", Spec: spec, Tenant: "t1"}, true)
	mustAppend(t, j, Record{Job: "job-1", State: StateRunning, Digest: "sha256:aa"}, false)
	mustAppend(t, j, Record{Job: "job-1", State: StateDone, Digest: "sha256:aa", Outcome: "miss"}, true)
	mustAppend(t, j, Record{Job: "job-2", State: StateAccepted, Digest: "sha256:bb", Spec: spec}, true)
	j.Close()

	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	recs2, valid, rerr := Replay(data)
	if rerr != nil {
		t.Fatalf("replay: %v", rerr)
	}
	if valid != int64(len(data)) {
		t.Fatalf("valid %d != file size %d", valid, len(data))
	}
	if len(recs2) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs2))
	}
	for i, r := range recs2 {
		if r.Schema != Schema {
			t.Fatalf("record %d schema %q", i, r.Schema)
		}
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d seq %d, want %d", i, r.Seq, i+1)
		}
	}
	if !bytes.Equal(recs2[0].Spec, spec) {
		t.Fatalf("spec did not round-trip: %s", recs2[0].Spec)
	}

	pending := Pending(recs2)
	if len(pending) != 1 || pending[0].Job != "job-2" {
		t.Fatalf("pending %+v, want [job-2]", pending)
	}
}

func TestOpenCompactsTerminalHistory(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	spec := json.RawMessage(`{"seed":7}`)
	for _, id := range []string{"job-1", "job-2", "job-3"} {
		mustAppend(t, j, Record{Job: id, State: StateAccepted, Digest: "sha256:" + id, Spec: spec}, true)
	}
	mustAppend(t, j, Record{Job: "job-1", State: StateDone, Outcome: "miss"}, true)
	mustAppend(t, j, Record{Job: "job-3", State: StateCancelled}, true)
	j.Close()

	// Reopen: only job-2 is pending; the compacted file must contain
	// exactly its accepted record, with seq continuing past the history.
	j2, recs := openT(t, dir)
	pending := Pending(recs)
	if len(pending) != 1 || pending[0].Job != "job-2" {
		t.Fatalf("pending after reopen %+v, want [job-2]", pending)
	}
	j2.Close()
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	compacted, _, rerr := Replay(data)
	if rerr != nil {
		t.Fatalf("compacted file: %v", rerr)
	}
	if len(compacted) != 1 || compacted[0].Job != "job-2" || compacted[0].State != StateAccepted {
		t.Fatalf("compacted contents %+v, want job-2 accepted", compacted)
	}
	if compacted[0].Seq <= 5 {
		t.Fatalf("compaction rewound seq to %d", compacted[0].Seq)
	}
	if !bytes.Equal(compacted[0].Spec, spec) {
		t.Fatalf("compaction lost the spec: %s", compacted[0].Spec)
	}
}

// TestTornTailTruncatedCleanly cuts the file at every byte offset of
// the final record and proves: records before the cut survive, the torn
// tail is reported, the reopened journal accepts appends, and the
// result replays cleanly.
func TestTornTailTruncatedCleanly(t *testing.T) {
	build := func(dir string) []byte {
		j, _ := openT(t, dir)
		spec := json.RawMessage(`{"seed":3}`)
		mustAppend(t, j, Record{Job: "job-1", State: StateAccepted, Digest: "sha256:aa", Spec: spec}, true)
		mustAppend(t, j, Record{Job: "job-2", State: StateAccepted, Digest: "sha256:bb", Spec: spec}, true)
		j.Close()
		data, err := os.ReadFile(filepath.Join(dir, FileName))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	ref := build(t.TempDir())
	// The first record ends at headerLen+payloadLen; cut anywhere
	// strictly inside record 2.
	n1 := binary.BigEndian.Uint32(ref)
	boundary := int64(headerLen + int(n1))
	for cut := boundary + 1; cut < int64(len(ref)); cut += 7 {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, FileName), ref[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, replayed := openT(t, dir)
		if len(replayed) != 1 || replayed[0].Job != "job-1" {
			t.Fatalf("cut %d: replayed %+v, want just job-1", cut, replayed)
		}
		// The journal still works after truncation.
		mustAppend(t, j, Record{Job: "job-9", State: StateAccepted, Digest: "sha256:cc", Spec: json.RawMessage(`{}`)}, true)
		j.Close()
		data, err := os.ReadFile(filepath.Join(dir, FileName))
		if err != nil {
			t.Fatal(err)
		}
		after, valid, rerr := Replay(data)
		if rerr != nil || valid != int64(len(data)) {
			t.Fatalf("cut %d: post-truncation file not clean: %v", cut, rerr)
		}
		if len(after) != 2 || after[1].Job != "job-9" {
			t.Fatalf("cut %d: post-truncation records %+v", cut, after)
		}
	}
}

func TestReplayRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	mustAppend(t, j, Record{Job: "job-1", State: StateAccepted, Spec: json.RawMessage(`{}`)}, true)
	j.Close()
	data, _ := os.ReadFile(filepath.Join(dir, FileName))

	// Flip one payload byte: CRC must catch it.
	bad := append([]byte(nil), data...)
	bad[headerLen+2] ^= 0x40
	recs, valid, err := Replay(bad)
	var ce *CorruptError
	if len(recs) != 0 || valid != 0 || !errors.As(err, &ce) {
		t.Fatalf("bit flip not caught: recs=%d valid=%d err=%v", len(recs), valid, err)
	}

	// Implausible length field.
	bad = append([]byte(nil), data...)
	binary.BigEndian.PutUint32(bad, MaxRecord+1)
	if _, _, err := Replay(bad); err == nil {
		t.Fatal("implausible length accepted")
	}
}

func TestAppendTornChaos(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	mustAppend(t, j, Record{Job: "job-1", State: StateAccepted, Spec: json.RawMessage(`{}`)}, true)

	inj := chaos.New(42)
	inj.Arm("journal.done.write", chaos.Torn, 0)
	defer chaos.Activate(inj)()
	err := j.Append(Record{Job: "job-1", State: StateDone, Outcome: "miss"}, true)
	if !errors.Is(err, chaos.ErrCrash) {
		t.Fatalf("torn append returned %v, want ErrCrash", err)
	}
	if !inj.Dead() {
		t.Fatal("injector not dead after torn write")
	}
	// Dead injector: every later append fails before touching the file.
	if err := j.Append(Record{Job: "job-2", State: StateAccepted}, true); !errors.Is(err, chaos.ErrCrash) {
		t.Fatalf("post-crash append returned %v", err)
	}
	j.Close()

	// Recovery truncates the torn tail: job-1 is still pending (its
	// terminal record never committed).
	j2, recs := openT(t, dir)
	defer j2.Close()
	pending := Pending(recs)
	if len(pending) != 1 || pending[0].Job != "job-1" {
		t.Fatalf("pending after torn terminal %+v, want [job-1]", pending)
	}
}

// FuzzReplay pins the recovery invariants on arbitrary bytes: Replay
// never panics, the valid prefix is well-formed, and replaying the
// valid prefix is exact and error-free (truncation is idempotent).
func FuzzReplay(f *testing.F) {
	// Seeds: a clean journal, truncations, bit flips, garbage.
	var clean []byte
	{
		dir := f.TempDir()
		j, _, err := Open(dir)
		if err != nil {
			f.Fatal(err)
		}
		j.Append(Record{Job: "job-1", State: StateAccepted, Digest: "sha256:aa", Spec: json.RawMessage(`{"seed":1}`), Tenant: "t"}, true)
		j.Append(Record{Job: "job-1", State: StateRunning}, false)
		j.Append(Record{Job: "job-1", State: StateDone, Outcome: "miss"}, true)
		j.Close()
		clean, err = os.ReadFile(filepath.Join(dir, FileName))
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-3])
	f.Add(clean[:headerLen+1])
	f.Add(clean[:3])
	flip := append([]byte(nil), clean...)
	flip[len(flip)/2] ^= 0x10
	f.Add(flip)
	f.Add([]byte{})
	f.Add([]byte("not a journal at all, just text"))
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0, '{'})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, err := Replay(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d outside [0,%d]", valid, len(data))
		}
		if err == nil && valid != int64(len(data)) {
			t.Fatalf("clean replay stopped early: %d of %d", valid, len(data))
		}
		for _, r := range recs {
			if r.Schema != Schema || !r.State.Valid() || r.Job == "" {
				t.Fatalf("invalid record escaped replay: %+v", r)
			}
		}
		// Truncation idempotence: the valid prefix replays identically,
		// with no error.
		recs2, valid2, err2 := Replay(data[:valid])
		if err2 != nil || valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("replay of valid prefix diverged: err=%v valid=%d/%d recs=%d/%d",
				err2, valid2, valid, len(recs2), len(recs))
		}
		// Pending never invents jobs.
		for _, p := range Pending(recs) {
			if p.State != StateAccepted {
				t.Fatalf("pending returned non-accepted record %+v", p)
			}
		}
	})
}
