package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stdcelltune/internal/obs"
	"stdcelltune/internal/service/cache"
)

// smallSpec is the scaled-down request the round-trip tests use: the
// full pipeline, real, but minutes become milliseconds.
var smallSpec = Spec{
	Design: "mcu-small", Instances: 3, Seed: 1,
	Method: "sigma-ceiling", Bound: 0.02, ClockNS: 6,
}

func postJob(t *testing.T, ts *httptest.Server, spec Spec) JobView {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/jobs: %d %s", resp.StatusCode, data)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// awaitJob waits for the job's Done channel — readiness is an event,
// not a poll — then fetches the terminal document once over HTTP.
func awaitJob(t *testing.T, ts *httptest.Server, m *Manager, id string) JobView {
	t.Helper()
	j, ok := m.Job(id)
	if !ok {
		t.Fatalf("job %s not registered", id)
	}
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second): // backstop only; never paces the test
		t.Fatalf("job %s did not finish", id)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func getBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, data)
	}
	return data
}

// TestServerRoundTrip is the acceptance test of the tentpole: a cold
// HTTP job computes the real pipeline; its artifacts are byte-identical
// to a direct library call; a warm identical job is served from the
// cache — hit counter up, zero new robust-pool tasks — with the same
// bytes again.
func TestServerRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline over HTTP")
	}
	// The reference result, straight through the facade, no daemon.
	direct, err := Run(context.Background(), smallSpec)
	if err != nil {
		t.Fatal(err)
	}

	store, _ := cache.New("")
	m := NewManager(store, ManagerOptions{Trace: true})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	cold := postJob(t, ts, smallSpec)
	if cold.Status != StatusQueued && cold.Status != StatusRunning {
		t.Fatalf("fresh job status %s", cold.Status)
	}
	done := awaitJob(t, ts, m, cold.ID)
	if done.Status != StatusDone {
		t.Fatalf("cold job failed: %s (%d)", done.Error, done.HTTPCode)
	}
	if done.Outcome != "miss" {
		t.Fatalf("cold outcome %q, want miss", done.Outcome)
	}
	if len(done.Artifacts) != len(direct) {
		t.Fatalf("job lists %d artifacts, direct run produced %d", len(done.Artifacts), len(direct))
	}

	// Byte identity, cold path vs direct library call, every artifact.
	for name, want := range direct {
		got := getBytes(t, ts.URL+"/v1/artifacts/"+done.Digest+"/"+name)
		if !bytes.Equal(got, want) {
			t.Errorf("artifact %s over HTTP differs from direct library call (%d vs %d bytes)", name, len(got), len(want))
		}
	}

	// Warm path: same spec again. No pipeline work may happen — the
	// robust pool task counter is the witness that nothing recomputed.
	poolTasks := obs.Default().Counter("robust.pool_tasks").Value()
	hits := obs.Default().Counter("service.cache_hits").Value()
	warm := awaitJob(t, ts, m, postJob(t, ts, smallSpec).ID)
	if warm.Status != StatusDone || warm.Outcome != "hit" {
		t.Fatalf("warm job: status %s outcome %q, want done/hit", warm.Status, warm.Outcome)
	}
	if got := obs.Default().Counter("robust.pool_tasks").Value(); got != poolTasks {
		t.Errorf("warm request ran %d pool tasks, want 0", got-poolTasks)
	}
	if got := obs.Default().Counter("service.cache_hits").Value(); got != hits+1 {
		t.Errorf("cache-hit counter %d -> %d, want +1", hits, got)
	}
	for name, want := range direct {
		got := getBytes(t, ts.URL+"/v1/artifacts/"+warm.Digest+"/"+name)
		if !bytes.Equal(got, want) {
			t.Errorf("warm artifact %s differs from cold/direct bytes", name)
		}
	}

	// The artifact index lists the entry under its digest.
	var index struct {
		Digest    string         `json:"digest"`
		Artifacts []ArtifactView `json:"artifacts"`
	}
	if err := json.Unmarshal(getBytes(t, ts.URL+"/v1/artifacts/"+done.Digest), &index); err != nil {
		t.Fatal(err)
	}
	if index.Digest != smallSpec.Digest() || len(index.Artifacts) != len(direct) {
		t.Fatalf("artifact index: %+v", index)
	}
}

// TestServerEventsSSE: the events endpoint streams the job's pipeline
// spans and terminates with a done event carrying the job document.
func TestServerEventsSSE(t *testing.T) {
	store, _ := cache.New("")
	m := NewManager(store, ManagerOptions{
		Trace: true,
		Run: func(ctx context.Context, s Spec) (map[string][]byte, error) {
			tr := obs.TracerFrom(ctx)
			for _, stage := range []string{"characterize", "tune", "synthesize"} {
				tr.Start(stage, "service").End()
			}
			return map[string][]byte{"result.json": []byte("{}\n")}, nil
		},
	})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	v := postJob(t, ts, Spec{})
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var spanNames []string
	var gotDone bool
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() && !gotDone {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "span":
				var ev obs.SpanEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("span event not JSON: %v in %q", err, data)
				}
				spanNames = append(spanNames, ev.Name)
			case "done":
				var final JobView
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					t.Fatalf("done event not a job view: %v", err)
				}
				if final.Status != StatusDone {
					t.Fatalf("done event status %s", final.Status)
				}
				gotDone = true
			}
		}
	}
	if !gotDone {
		t.Fatal("no done event before stream end")
	}
	// The manager's root "job" span ends last, after the pipeline spans.
	want := []string{"characterize", "tune", "synthesize", "job"}
	if fmt.Sprint(spanNames) != fmt.Sprint(want) {
		t.Fatalf("span events %v, want %v", spanNames, want)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	store, _ := cache.New("")
	m := NewManager(store, ManagerOptions{
		Run: func(_ context.Context, s Spec) (map[string][]byte, error) {
			return map[string][]byte{"r": []byte("x")}, nil
		},
	})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	for _, body := range []string{
		`{"corner":"nominal"}`,     // invalid enum
		`{"clock_ns":"fast"}`,      // type mismatch
		`{"unknown_field":1}`,      // schema violation
		`{"schema":"other-api/9"}`, // wrong schema version
		`not json`,                 // unparsable
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e errorDoc
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || e.Status != http.StatusBadRequest {
			t.Errorf("body %q: status %d/%d, want 400", body, resp.StatusCode, e.Status)
		}
	}
	for _, url := range []string{"/v1/jobs/nope", "/v1/artifacts/sha256:nope", "/v1/artifacts/sha256:nope/x"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", url, resp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	store, _ := cache.New("")
	m := NewManager(store, ManagerOptions{Run: func(_ context.Context, s Spec) (map[string][]byte, error) {
		return map[string][]byte{"r": []byte("x")}, nil
	}})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()
	var h struct {
		OK      bool     `json:"ok"`
		Schema  string   `json:"schema"`
		Methods []string `json:"methods"`
	}
	if err := json.Unmarshal(getBytes(t, ts.URL+"/healthz"), &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Schema != SchemaSpec || len(h.Methods) != 5 {
		t.Fatalf("healthz %+v", h)
	}
}
