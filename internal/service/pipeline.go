package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"stdcelltune"
	"stdcelltune/internal/liberty"
	"stdcelltune/internal/netlist"
	"stdcelltune/internal/obs"
	"stdcelltune/internal/service/shard"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/variation"
)

// Artifact names produced by one pipeline run. Every run yields exactly
// this set; the cache seals them content-addressed, so a warm request
// replays the cold run's bytes exactly.
const (
	ArtifactSpec      = "spec.json"          // normalized request + digest
	ArtifactStatLib   = "statlib.lib"        // statistical library, Liberty text
	ArtifactWindows   = "windows.json"       // tuned per-pin operating windows
	ArtifactTuning    = "tuning_report.json" // thresholds and per-pin restriction report
	ArtifactSynthesis = "synthesis.json"     // restricted synthesis outcome
	ArtifactVariation = "variation.json"     // statistical timing of the result
	ArtifactNetlist   = "netlist.v"          // synthesized design, structural Verilog
)

// Versioned artifact schema identifiers.
const (
	SchemaWindows   = "stdcelltune-windows/1"
	SchemaTuning    = "stdcelltune-tuning/1"
	SchemaSynthesis = "stdcelltune-synth/1"
	SchemaVariation = "stdcelltune-variation/1"
)

// DefaultShardSize is the instances-per-shard default of the cluster
// tier: small enough that a 200-instance job spreads over a handful of
// workers with steals possible, large enough that the per-shard
// partial-snapshot overhead stays negligible against the fold itself.
const DefaultShardSize = 25

// charNoise is the characterization-noise setting of the service
// pipeline, matching the facade's CharacterizeCtx exactly — the
// sharded fold must feed variation.Instance the identical Config or
// the per-instance bytes change.
var charNoise = variation.DefaultConfig().CharNoise

// Pipeline is the service compute function with its cluster knobs. The
// zero value IS the classic single-node pipeline: no coordinator, no
// simulated characterizer latency, byte-identical behavior to the
// pre-cluster daemon (package-level Run delegates to it).
type Pipeline struct {
	// Cluster, when non-nil and currently seeing live workers,
	// distributes the characterize stage as shard tasks and merges the
	// returned partials in fixed shard order. If the fleet dies mid-job
	// (shard.ErrNoWorkers) the stage falls back to computing locally —
	// cluster loss costs latency, never the job.
	Cluster *shard.Coordinator
	// ShardSize is the instances-per-shard split; 0 means
	// DefaultShardSize. The split is a pure function of (N, ShardSize),
	// so the merged result is independent of worker count.
	ShardSize int
	// SimCharLatency injects a per-instance sleep modeling an external
	// characterizer (one SPICE run per Monte-Carlo instance). It
	// applies to the local fallback path here and, via the worker's
	// Executor, to shard computes — making single-node vs cluster
	// benchmarks an apples-to-apples comparison of the same
	// latency-bound workload.
	SimCharLatency time.Duration
}

// Run executes the full paper pipeline for a spec and returns the
// artifact set. It is the compute function behind the cache: pure in
// the spec (the pipeline is deterministic per spec digest), cancellable
// through ctx, and instrumented with service-category spans so a job's
// SSE stream shows stage progress.
//
// Errors propagate the facade's typed sentinels: ErrCancelled,
// ErrQuarantined and ErrWindowInfeasible all survive to the HTTP
// mapping via errors.Is.
func Run(ctx context.Context, spec Spec) (map[string][]byte, error) {
	var p Pipeline
	return p.Run(ctx, spec)
}

// Run is the pipeline with this Pipeline's cluster configuration; see
// the package-level Run for the contract.
func (p *Pipeline) Run(ctx context.Context, spec Spec) (map[string][]byte, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.Normalized()
	tr := obs.TracerFrom(ctx)

	corner, _ := cornerFromSlug(spec.Corner)
	cat := stdcelltune.NewCatalogue(corner)

	stat, err := p.characterize(ctx, cat, spec)
	if err != nil {
		return nil, fmt.Errorf("characterize: %w", err)
	}

	method, _ := methodFromSlug(spec.Method)
	span := tr.Start("tune", "service", "method", spec.Method, "bound", spec.Bound)
	win, rep, err := stdcelltune.TuneCtx(ctx, stat, stdcelltune.TuneOptions{Method: method, Bound: spec.Bound})
	span.End()
	if err != nil {
		return nil, fmt.Errorf("tune: %w", err)
	}

	cfg, _ := designConfig(spec.Design)
	span = tr.Start("synthesize", "service", "design", spec.Design, "clock_ns", spec.ClockNS)
	design, err := stdcelltune.NewMCUWith(cfg)
	if err != nil {
		span.End()
		return nil, fmt.Errorf("rtlgen: %w", err)
	}
	res, err := stdcelltune.SynthesizeCtx(ctx, design, cat, stdcelltune.SynthesizeOptions{
		Clock: spec.ClockNS, Windows: win, Name: spec.Design,
	})
	span.End()
	if err != nil {
		return nil, fmt.Errorf("synthesize: %w", err)
	}

	span = tr.Start("analyze-variation", "service", "rho", spec.Rho)
	ds, err := stdcelltune.AnalyzeVariationCtx(ctx, res, stat, stdcelltune.AnalyzeVariationOptions{Rho: spec.Rho})
	span.End()
	if err != nil {
		return nil, fmt.Errorf("analyze variation: %w", err)
	}

	return encodeArtifacts(spec, stat, win, rep, res, ds)
}

// characterize runs the Monte-Carlo characterization stage, picking the
// execution mode:
//
//   - cluster: a live worker fleet folds shards remotely and the
//     coordinator merges the partials in fixed shard order. Numerically
//     within the documented BuildStream ulp contract of the two-pass
//     Build; deterministically reproducible because the shard split and
//     merge order depend only on (N, ShardSize), never on which worker
//     computed what.
//   - simulated latency: local fold through the same streaming path,
//     with the per-instance sleep the workers would apply — the
//     single-node baseline for cluster benchmarks.
//   - local: the facade's CharacterizeCtx, byte-identical to the
//     pre-cluster pipeline. The zero-value Pipeline always lands here.
func (p *Pipeline) characterize(ctx context.Context, cat *stdcelltune.Catalogue, spec Spec) (*stdcelltune.StatisticalLibrary, error) {
	tr := obs.TracerFrom(ctx)
	n := spec.Instances
	name := "stat_" + cat.Corner.Name()

	if p.Cluster != nil && p.Cluster.Workers() > 0 {
		size := p.ShardSize
		if size <= 0 {
			size = DefaultShardSize
		}
		span := tr.Start("characterize", "service",
			"instances", n, "seed", spec.Seed, "mode", "cluster", "shard_size", size)
		stat, err := p.distribute(ctx, cat, spec, name, size)
		span.End()
		if err == nil {
			return stat, nil
		}
		if !errors.Is(err, shard.ErrNoWorkers) {
			return nil, err
		}
		// The fleet died mid-wait. Cluster loss costs latency, never the
		// job: recompute locally below.
		obs.Log().Warn("cluster characterize lost its workers, computing locally", "spec", spec.Digest())
	}

	if p.SimCharLatency > 0 {
		span := tr.Start("characterize", "service",
			"instances", n, "seed", spec.Seed, "mode", "local-simlatency")
		defer span.End()
		sm := variation.NewSampler(spec.Seed)
		cfg := variation.Config{N: n, Seed: spec.Seed, CharNoise: charNoise}
		stat, err := statlib.BuildStream(name, n, func(i int) (*liberty.Library, error) {
			if err := sleepCtx(ctx, p.SimCharLatency); err != nil {
				return nil, err
			}
			return variation.Instance(cat, sm, i, cfg), nil
		})
		if err != nil {
			return nil, err
		}
		return (*stdcelltune.StatisticalLibrary)(stat), nil
	}

	span := tr.Start("characterize", "service", "instances", n, "seed", spec.Seed)
	defer span.End()
	return stdcelltune.CharacterizeCtx(ctx, cat, stdcelltune.CharacterizeOptions{
		Instances: spec.Instances, Seed: spec.Seed,
	})
}

// distribute splits the characterize stage into shard tasks, runs them
// on the cluster, and merges the returned partials.
func (p *Pipeline) distribute(ctx context.Context, cat *stdcelltune.Catalogue, spec Spec, name string, size int) (*stdcelltune.StatisticalLibrary, error) {
	dig := spec.Digest()
	tasks := shard.CharTasks(dig, name, spec.Corner, spec.Seed, charNoise, spec.Instances, size)
	raws, err := p.Cluster.Run(ctx, dig, spec.Instances, tasks)
	if err != nil {
		return nil, err
	}
	parts := make([]*statlib.Partial, len(raws))
	for i, raw := range raws {
		part := new(statlib.Partial)
		if err := json.Unmarshal(raw, part); err != nil {
			return nil, fmt.Errorf("shard %d: decode partial: %w", i, err)
		}
		parts[i] = part
	}
	// The structural reference is the nominal (unperturbed) library —
	// cheap, and congruent with every instance by construction.
	stat, err := statlib.MergeShards(name, spec.Instances, cat.BuildLibrary(name+"_ref", nil), parts)
	if err != nil {
		return nil, err
	}
	return (*stdcelltune.StatisticalLibrary)(stat), nil
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// windowsDoc is the ArtifactWindows JSON shape.
type windowsDoc struct {
	Schema  string      `json:"schema"`
	Name    string      `json:"name"`
	Windows []windowRow `json:"windows"`
}

type windowRow struct {
	Cell    string  `json:"cell"`
	Pin     string  `json:"pin"`
	MinLoad float64 `json:"min_load_pf"`
	MaxLoad float64 `json:"max_load_pf"`
	MinSlew float64 `json:"min_slew_ns"`
	MaxSlew float64 `json:"max_slew_ns"`
}

// tuningDoc is the ArtifactTuning JSON shape.
type tuningDoc struct {
	Schema       string   `json:"schema"`
	Method       string   `json:"method"`
	Bound        float64  `json:"bound"`
	Clusters     int      `json:"clusters"`
	Pins         int      `json:"pins"`
	ExcludedPins int      `json:"excluded_pins"`
	MeanRetained float64  `json:"mean_retained"`
	PinReports   []pinRow `json:"pin_reports"`
}

type pinRow struct {
	Cell     string  `json:"cell"`
	Pin      string  `json:"pin"`
	Retained float64 `json:"retained"`
	Excluded bool    `json:"excluded,omitempty"`
}

// synthDoc is the ArtifactSynthesis JSON shape.
type synthDoc struct {
	Schema             string  `json:"schema"`
	Design             string  `json:"design"`
	ClockNS            float64 `json:"clock_ns"`
	Met                bool    `json:"met"`
	Area               float64 `json:"area_um2"`
	WNS                float64 `json:"wns_ns"`
	TNS                float64 `json:"tns_ns"`
	Iterations         int     `json:"iterations"`
	Buffered           int     `json:"buffered"`
	Upsized            int     `json:"upsized"`
	Downsized          int     `json:"downsized"`
	FullAnalyses       int     `json:"full_analyses"`
	IncrementalUpdates int     `json:"incremental_updates"`
}

// variationDoc is the ArtifactVariation JSON shape.
type variationDoc struct {
	Schema            string         `json:"schema"`
	Rho               float64        `json:"rho"`
	DesignMu          float64        `json:"design_mu_ns"`
	DesignSigma       float64        `json:"design_sigma_ns"`
	Variability       float64        `json:"variability"`
	WorstMeanPlus3Sig float64        `json:"worst_mu_plus_3sigma_ns"`
	Paths             int            `json:"paths"`
	MaxDepth          int            `json:"max_depth"`
	DegradedCells     map[string]int `json:"degraded_cells,omitempty"`
}

// encodeArtifacts renders the pipeline outputs into the artifact set.
// Every encoder is deterministic: fixed field order, sorted slices, and
// Go's stable float formatting, so the cache's byte-identity invariant
// holds across runs.
func encodeArtifacts(spec Spec, stat *stdcelltune.StatisticalLibrary, win *stdcelltune.Windows,
	rep *stdcelltune.TuningReport, res *stdcelltune.SynthesisResult, ds *stdcelltune.DesignStats) (map[string][]byte, error) {

	out := make(map[string][]byte, 7)
	put := func(name string, v any) error {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return fmt.Errorf("encode %s: %w", name, err)
		}
		out[name] = append(data, '\n')
		return nil
	}

	specDoc := struct {
		Spec
		Digest string `json:"digest"`
	}{spec.Normalized(), spec.Digest()}
	if err := put(ArtifactSpec, specDoc); err != nil {
		return nil, err
	}

	libText, err := stdcelltune.WriteLiberty(stat.ToLiberty())
	if err != nil {
		return nil, fmt.Errorf("encode %s: %w", ArtifactStatLib, err)
	}
	out[ArtifactStatLib] = []byte(libText)

	wd := windowsDoc{Schema: SchemaWindows, Name: win.Name}
	for _, k := range win.Keys() {
		cell, pin, _ := strings.Cut(k, "/")
		w, _ := win.Window(cell, pin)
		wd.Windows = append(wd.Windows, windowRow{
			Cell: cell, Pin: pin,
			MinLoad: w.MinLoad, MaxLoad: w.MaxLoad,
			MinSlew: w.MinSlew, MaxSlew: w.MaxSlew,
		})
	}
	if err := put(ArtifactWindows, wd); err != nil {
		return nil, err
	}

	td := tuningDoc{
		Schema:       SchemaTuning,
		Method:       spec.Method,
		Bound:        spec.Bound,
		Clusters:     len(rep.Clusters),
		Pins:         len(rep.Pins),
		ExcludedPins: rep.ExcludedPins(),
	}
	for _, p := range rep.Pins {
		td.MeanRetained += p.Retained
		td.PinReports = append(td.PinReports, pinRow{Cell: p.Cell, Pin: p.Pin, Retained: p.Retained, Excluded: p.Excluded})
	}
	if len(rep.Pins) > 0 {
		td.MeanRetained /= float64(len(rep.Pins))
	}
	sort.Slice(td.PinReports, func(i, j int) bool {
		a, b := td.PinReports[i], td.PinReports[j]
		if a.Cell != b.Cell {
			return a.Cell < b.Cell
		}
		return a.Pin < b.Pin
	})
	if err := put(ArtifactTuning, td); err != nil {
		return nil, err
	}

	sd := synthDoc{
		Schema:             SchemaSynthesis,
		Design:             spec.Design,
		ClockNS:            spec.ClockNS,
		Met:                res.Met,
		Area:               res.Area(),
		WNS:                res.Timing.WNS(),
		TNS:                res.Timing.TNS(),
		Iterations:         res.Iterations,
		Buffered:           res.Buffered,
		Upsized:            res.Upsized,
		Downsized:          res.Downsized,
		FullAnalyses:       res.FullAnalyses,
		IncrementalUpdates: res.IncrementalUpdates,
	}
	if err := put(ArtifactSynthesis, sd); err != nil {
		return nil, err
	}

	// The synthesized netlist rides along as deterministic structural
	// Verilog: WriteVerilog emits sorted ports, wires and connections, so
	// the byte-identity invariant holds — and the query layer can rebuild
	// the exact design (instances, nets, what-if evaluation) from the
	// artifact set alone.
	var nb bytes.Buffer
	if err := netlist.WriteVerilog(&nb, res.Netlist); err != nil {
		return nil, fmt.Errorf("encode %s: %w", ArtifactNetlist, err)
	}
	out[ArtifactNetlist] = nb.Bytes()

	maxDepth := 0
	for _, p := range ds.Paths {
		if p.Depth > maxDepth {
			maxDepth = p.Depth
		}
	}
	vd := variationDoc{
		Schema:            SchemaVariation,
		Rho:               ds.Rho,
		DesignMu:          ds.Design.Mu,
		DesignSigma:       ds.Design.Sigma,
		Variability:       ds.Design.Variability(),
		WorstMeanPlus3Sig: ds.WorstMeanPlus3Sigma(),
		Paths:             len(ds.Paths),
		MaxDepth:          maxDepth,
		DegradedCells:     ds.Degraded,
	}
	if err := put(ArtifactVariation, vd); err != nil {
		return nil, err
	}
	return out, nil
}
