package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T1", Header: []string{"name", "value"}}
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 12345.0)
	tb.AddRow("c", 42)
	tb.AddRow("flag", true)
	out := tb.Render()
	for _, want := range []string{"T1", "name", "alpha", "12345", "42", "true", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + underline + header + separator + 4 rows.
	if len(lines) != 8 {
		t.Errorf("line count %d", len(lines))
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow("x,y", `quote"inside`)
	tb.AddRow("plain", 3)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"x,y"`) {
		t.Errorf("comma not quoted: %s", out)
	}
	if !strings.Contains(out, `"quote""inside"`) {
		t.Errorf("quote not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("header missing: %s", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"one", "two"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines %d", len(lines))
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if strings.Count(lines[0], "#") != 5 {
		t.Errorf("half bar wrong: %q", lines[0])
	}
	// Zero values render empty bars without dividing by zero.
	z := Bars([]string{"z"}, []float64{0}, 10)
	if strings.Contains(z, "#") {
		t.Error("zero bar has marks")
	}
}

func TestRenderSeries(t *testing.T) {
	a := Series{Name: "base", X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}}
	b := Series{Name: "tuned", X: []float64{1, 2}, Y: []float64{9, 18}}
	out := RenderSeries("fig", "clk", a, b)
	if !strings.Contains(out, "base") || !strings.Contains(out, "tuned") {
		t.Errorf("names missing:\n%s", out)
	}
	if !strings.Contains(out, "30") {
		t.Errorf("long series value missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + 3 rows
		t.Errorf("line count %d:\n%s", len(lines), out)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345:   "12345",
		-2000:   "-2000",
		12.3456: "12.35",
		0.12345: "0.1235",
	}
	for v, want := range cases {
		if got := fmtFloat(v); got != want {
			t.Errorf("fmtFloat(%v)=%q want %q", v, got, want)
		}
	}
}
