// Package report renders experiment results as aligned ASCII tables,
// bar charts and CSV series — the textual equivalents of the paper's
// tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row built from stringable values.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmtFloat(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case bool:
			row[i] = fmt.Sprintf("%v", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			w := len(c)
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// WriteCSV emits the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	write := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

// Bars renders a labelled horizontal bar chart scaled to width.
func Bars(labels []string, values []float64, width int) string {
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(width))
		}
		fmt.Fprintf(&b, "%-*s | %-*s %s\n", maxL, labels[i], width, strings.Repeat("#", n), fmtFloat(v))
	}
	return b.String()
}

// Series is a named (x, y) sequence for figure data.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// RenderSeries prints series sharing the x-axis of the first series as
// aligned columns: x, then one y column per series. Shorter series leave
// their column blank past their end.
func RenderSeries(title string, xLabel string, series ...Series) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "  %-12s", s.Name)
	}
	b.WriteByte('\n')
	n := 0
	for _, s := range series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		x := ""
		for _, s := range series {
			if i < len(s.X) {
				x = fmtFloat(s.X[i])
				break
			}
		}
		fmt.Fprintf(&b, "%-12s", x)
		for _, s := range series {
			y := ""
			if i < len(s.Y) {
				y = fmtFloat(s.Y[i])
			}
			fmt.Fprintf(&b, "  %-12s", y)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
