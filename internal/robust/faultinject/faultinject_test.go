package faultinject

import (
	"math"
	"testing"

	"stdcelltune/internal/liberty"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/variation"
)

func instances(t *testing.T, n int) []*liberty.Library {
	t.Helper()
	cat := stdcell.NewCatalogue(stdcell.Typical)
	return variation.Instances(cat, variation.Config{N: n, Seed: 1, CharNoise: 0.02})
}

// snapshot flattens every delay-table value so two library sets can be
// compared bit-for-bit.
func snapshot(libs []*liberty.Library) []float64 {
	var out []float64
	for _, lib := range libs {
		for _, cell := range lib.Cells {
			for _, pin := range cell.Pins {
				for _, arc := range pin.Timing {
					for _, tb := range arc.DelayTables() {
						for _, row := range tb.Values {
							out = append(out, row...)
						}
					}
				}
			}
		}
	}
	return out
}

func TestZeroRateIsNoOp(t *testing.T) {
	libs := instances(t, 2)
	before := snapshot(libs)
	rep := Corrupt(libs, Config{Rate: 0, Seed: 99})
	if rep.Entries != 0 || rep.Arcs != 0 {
		t.Fatalf("zero rate reported work: %+v", rep)
	}
	after := snapshot(libs)
	if len(before) != len(after) {
		t.Fatal("structure changed")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("entry %d changed", i)
		}
	}
}

func TestDeterministicPattern(t *testing.T) {
	a := instances(t, 3)
	b := instances(t, 3)
	cfg := Config{Rate: 0.03, Seed: 7}
	ra := Corrupt(a, cfg)
	rb := Corrupt(b, cfg)
	if ra != rb {
		t.Fatalf("same seed, different reports: %+v vs %+v", ra, rb)
	}
	sa, sb := snapshot(a), snapshot(b)
	if len(sa) != len(sb) {
		t.Fatal("same seed, different structure")
	}
	for i := range sa {
		va, vb := sa[i], sb[i]
		if va != vb && !(math.IsNaN(va) && math.IsNaN(vb)) {
			t.Fatalf("same seed, entry %d differs: %g vs %g", i, va, vb)
		}
	}
	// A different seed must produce a different pattern.
	c := instances(t, 3)
	rc := Corrupt(c, Config{Rate: 0.03, Seed: 8})
	if rc == ra {
		t.Log("reports coincidentally equal; comparing values")
		sc := snapshot(c)
		same := true
		for i := range sa {
			if sa[i] != sc[i] && !(math.IsNaN(sa[i]) && math.IsNaN(sc[i])) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical corruption")
		}
	}
}

func TestRateScalesDamage(t *testing.T) {
	libs := instances(t, 2)
	clean := len(snapshot(libs))
	rep := Corrupt(libs, Config{Rate: 0.05, Seed: 1, Modes: []Mode{NaNEntry}})
	if rep.Arcs != 0 {
		t.Fatalf("NaN-only run dropped arcs: %+v", rep)
	}
	got := float64(rep.Entries) / float64(clean)
	if got < 0.03 || got > 0.07 {
		t.Errorf("damaged fraction %.3f, want ~0.05", got)
	}
	nan := 0
	for _, v := range snapshot(libs) {
		if math.IsNaN(v) {
			nan++
		}
	}
	if nan != rep.Entries {
		t.Errorf("report says %d entries, library holds %d NaNs", rep.Entries, nan)
	}
}

func TestNegativeDelayMode(t *testing.T) {
	libs := instances(t, 2)
	rep := Corrupt(libs, Config{Rate: 0.05, Seed: 1, Modes: []Mode{NegativeDelay}})
	if rep.Entries == 0 {
		t.Fatal("nothing corrupted at 5%")
	}
	neg := 0
	for _, v := range snapshot(libs) {
		if v < 0 {
			neg++
		}
	}
	if neg != rep.Entries {
		t.Errorf("report says %d entries, library holds %d negatives", rep.Entries, neg)
	}
}

func TestDropArcMode(t *testing.T) {
	libs := instances(t, 2)
	arcsBefore := 0
	for _, pinArcs := range arcCounts(libs) {
		arcsBefore += pinArcs
	}
	rep := Corrupt(libs, Config{Rate: 0.02, Seed: 1, Modes: []Mode{DropArc}})
	if rep.Arcs == 0 {
		t.Fatal("no arcs dropped at 2%")
	}
	arcsAfter := 0
	for _, pinArcs := range arcCounts(libs) {
		arcsAfter += pinArcs
	}
	if arcsBefore-arcsAfter != rep.Arcs {
		t.Errorf("report says %d dropped, libraries lost %d", rep.Arcs, arcsBefore-arcsAfter)
	}
}

func arcCounts(libs []*liberty.Library) []int {
	var out []int
	for _, lib := range libs {
		for _, cell := range lib.Cells {
			for _, pin := range cell.Pins {
				if pin.Direction == liberty.Output {
					out = append(out, len(pin.Timing))
				}
			}
		}
	}
	return out
}

// TestStatlibSurvivesInjection is the integration seam: a 5% mixed-mode
// injection must fold into a statistical library with some cells
// quarantined, every surviving table finite, and no hard failure.
func TestStatlibSurvivesInjection(t *testing.T) {
	libs := instances(t, 8)
	Corrupt(libs, Config{Rate: 0.05, Seed: 1})
	sl, err := statlib.Build("injected", libs)
	if err != nil {
		t.Fatalf("5%% injection must degrade, not fail: %v", err)
	}
	if sl.Quarantine.Len() == 0 {
		t.Error("mixed-mode injection quarantined nothing")
	}
	if sl.Quarantine.Len() == sl.Quarantine.Total {
		t.Error("every cell quarantined: degradation ladder broken")
	}
	for name, c := range sl.Cells {
		for _, p := range c.Pins {
			for _, a := range p.Arcs {
				for _, tb := range []interface{ Max() float64 }{a.MeanRise, a.MeanFall, a.SigmaRise, a.SigmaFall} {
					if m := tb.Max(); math.IsNaN(m) || math.IsInf(m, 0) {
						t.Fatalf("%s: non-finite value survived folding", name)
					}
				}
			}
		}
	}
}
