// Package faultinject corrupts Monte-Carlo library instances on purpose
// so the pipeline's degradation paths (entry-level sample filtering,
// cell quarantine, quarantine-limit hard failure) can be exercised in
// tests and from cmd/experiments without waiting for genuinely broken
// characterization data.
//
// Corruption is deterministic given the seed, and disjoint from the
// variation RNG streams: a zero-rate injector leaves every library
// bit-identical to the clean run.
package faultinject

import (
	"fmt"
	"math"

	"stdcelltune/internal/dist"
	"stdcelltune/internal/liberty"
)

// Mode is one corruption kind.
type Mode int

// The supported corruptions, mirroring real characterization failures.
const (
	// NaNEntry overwrites a delay-table entry with NaN (a characterizer
	// that failed to converge). Filtered per entry by statlib's fold.
	NaNEntry Mode = iota
	// NegativeDelay overwrites an entry with a large negative value (a
	// broken measurement). Filtered per entry by statlib's fold, like
	// NaNEntry — a delay sample below zero is physically impossible.
	NegativeDelay
	// DropArc removes a timing arc from a cell in one instance (a
	// truncated .lib), breaking cross-instance structure so the cell is
	// quarantined.
	DropArc
)

func (m Mode) String() string {
	switch m {
	case NaNEntry:
		return "nan-entry"
	case NegativeDelay:
		return "negative-delay"
	case DropArc:
		return "drop-arc"
	}
	return "unknown"
}

// AllModes lists every corruption kind, the default mix.
var AllModes = []Mode{NaNEntry, NegativeDelay, DropArc}

// Config parameterizes an injection pass.
type Config struct {
	// Rate is the corruption budget (0 disables), split evenly across
	// the enabled modes: per delay-LUT entry for NaNEntry and
	// NegativeDelay, per timing arc for DropArc.
	Rate float64
	// Seed makes the corruption pattern reproducible; independent of
	// the variation seed.
	Seed int64
	// Modes restricts which corruptions are injected; empty = AllModes.
	Modes []Mode
}

// Report summarizes one injection pass.
type Report struct {
	Entries int // LUT entries overwritten (NaN + negative)
	Arcs    int // timing arcs dropped
}

func (r Report) String() string {
	return fmt.Sprintf("faultinject: corrupted %d LUT entries, dropped %d arcs", r.Entries, r.Arcs)
}

// Corrupt damages the libraries in place according to the config and
// returns what it did. The rate budget is split evenly across the
// enabled modes: entry modes (NaNEntry, NegativeDelay) corrupt each
// delay-table entry of each output-pin timing arc independently with
// their share of Rate, while DropArc is an arc-level event — one roll
// per arc with its share of Rate — so that a realistic entry-corruption
// rate does not annihilate every arc in the library.
func Corrupt(libs []*liberty.Library, cfg Config) Report {
	var rep Report
	if cfg.Rate <= 0 || len(libs) == 0 {
		return rep
	}
	modes := cfg.Modes
	if len(modes) == 0 {
		modes = AllModes
	}
	var entryModes []Mode
	dropArc := false
	for _, m := range modes {
		if m == DropArc {
			dropArc = true
		} else {
			entryModes = append(entryModes, m)
		}
	}
	share := cfg.Rate / float64(len(modes))
	dropRate := 0.0
	if dropArc {
		dropRate = share
	}
	entryRate := share * float64(len(entryModes))
	for li, lib := range libs {
		// One named stream per instance: the pattern does not depend on
		// visit order and stays stable if instances generate in parallel.
		rng := dist.NewRNG(cfg.Seed).ForkNamed(fmt.Sprintf("faultinject%d", li))
		for _, cell := range lib.Cells {
			for _, pin := range cell.Pins {
				if pin.Direction != liberty.Output {
					continue
				}
				kept := pin.Timing[:0]
				for _, arc := range pin.Timing {
					if dropRate > 0 && rng.Float64() < dropRate {
						rep.Arcs++
						continue
					}
					if len(entryModes) > 0 {
						corruptEntries(arc, rng, entryRate, entryModes, &rep)
					}
					kept = append(kept, arc)
				}
				pin.Timing = kept
			}
		}
	}
	return rep
}

// corruptEntries damages one surviving arc's delay tables entry by
// entry.
func corruptEntries(arc *liberty.TimingArc, rng *dist.RNG, rate float64, modes []Mode, rep *Report) {
	for _, tb := range arc.DelayTables() {
		for i := range tb.Values {
			for j := range tb.Values[i] {
				if rng.Float64() >= rate {
					continue
				}
				switch modes[rng.Intn(len(modes))] {
				case NaNEntry:
					tb.Values[i][j] = math.NaN()
				case NegativeDelay:
					tb.Values[i][j] = -1 - 10*math.Abs(tb.Values[i][j])
				}
				rep.Entries++
			}
		}
	}
}
