package robust

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"stdcelltune/internal/obs"
)

// quarantinedItems counts every item quarantined anywhere in the
// process (exported as robust.quarantined_cells — the pipeline only
// quarantines library cells today).
var quarantinedItems = obs.Default().Counter("robust.quarantined_cells")

// DefaultQuarantineLimit is the fraction of quarantined items above
// which a stage must fail hard instead of degrading: losing up to half
// the library thins the result, losing more means the inputs themselves
// are broken.
const DefaultQuarantineLimit = 0.5

// ErrQuarantineLimit is the sentinel wrapped by every Check failure, so
// callers (the facade, the service daemon's HTTP error mapping) can
// classify "too much of the input was degenerate" with errors.Is
// instead of string matching.
var ErrQuarantineLimit = errors.New("robust: quarantine limit exceeded")

// QuarantineEntry records one skipped item and why it was skipped.
type QuarantineEntry struct {
	Name   string
	Reason string
}

// Quarantine collects items (library cells, in this pipeline) that a
// stage skipped because their data was degenerate, so the run degrades
// gracefully and still reports exactly what was dropped. Safe for
// concurrent Add.
type Quarantine struct {
	Stage string // which pipeline stage quarantined, e.g. "statlib"
	Total int    // items considered; set by the stage for Fraction

	mu      sync.Mutex
	entries []QuarantineEntry
	names   map[string]bool
}

// NewQuarantine creates an empty report for the named stage.
func NewQuarantine(stage string) *Quarantine {
	return &Quarantine{Stage: stage, names: make(map[string]bool)}
}

// Add records one quarantined item. Duplicate names keep the first
// reason.
func (q *Quarantine) Add(name, reason string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.names[name] {
		return
	}
	q.names[name] = true
	q.entries = append(q.entries, QuarantineEntry{Name: name, Reason: reason})
	quarantinedItems.Add(1)
	obs.Log().Warn("quarantined", "stage", q.Stage, "name", name, "reason", reason)
}

// Has reports whether the named item was quarantined.
func (q *Quarantine) Has(name string) bool {
	if q == nil {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.names[name]
}

// Reason returns why the named item was quarantined, or "" if it
// wasn't. Duplicate Adds keep the first reason, so this is the reason
// the stage recorded when it first dropped the item.
func (q *Quarantine) Reason(name string) string {
	if q == nil {
		return ""
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, e := range q.entries {
		if e.Name == name {
			return e.Reason
		}
	}
	return ""
}

// Len returns the number of quarantined items.
func (q *Quarantine) Len() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.entries)
}

// Entries returns a name-sorted copy of the report.
func (q *Quarantine) Entries() []QuarantineEntry {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	out := append([]QuarantineEntry(nil), q.entries...)
	q.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Fraction returns quarantined/total (zero when Total is unset).
func (q *Quarantine) Fraction() float64 {
	if q == nil || q.Total == 0 {
		return 0
	}
	return float64(q.Len()) / float64(q.Total)
}

// Check returns a hard error when the quarantined fraction exceeds the
// limit — the degradation contract's escape hatch for inputs too broken
// to produce a meaningful result.
func (q *Quarantine) Check(limit float64) error {
	if q == nil {
		return nil
	}
	if f := q.Fraction(); f > limit {
		return fmt.Errorf("%w: %s quarantined %d of %d items (%.0f%% > %.0f%% limit)",
			ErrQuarantineLimit, q.Stage, q.Len(), q.Total, 100*f, 100*limit)
	}
	return nil
}

// Render draws the report as one line per quarantined item, or an
// all-clear line when nothing was skipped.
func (q *Quarantine) Render() string {
	if q.Len() == 0 {
		return fmt.Sprintf("quarantine (%s): no cells quarantined\n", q.stage())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "quarantine (%s): %d of %d cells skipped\n", q.stage(), q.Len(), q.Total)
	for _, e := range q.Entries() {
		fmt.Fprintf(&b, "  %-16s %s\n", e.Name, e.Reason)
	}
	return b.String()
}

func (q *Quarantine) stage() string {
	if q == nil || q.Stage == "" {
		return "unknown"
	}
	return q.Stage
}
