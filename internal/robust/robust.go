// Package robust provides the fault-tolerance primitives the experiment
// pipeline is built on: a bounded, context-cancellable worker pool with
// per-task panic recovery and full error aggregation (pool.go), a
// retry helper with exponential backoff and jitter for transient
// failures (retry.go), and the quarantine report used to degrade
// gracefully when individual library cells turn out to be unusable
// instead of failing a whole run (quarantine.go).
//
// The design contract, shared by every consumer (see DESIGN.md,
// "Failure semantics"):
//
//   - A panic inside a pooled task surfaces as a *PanicError on the
//     caller, never as a process crash.
//   - Cancelling the context stops new work promptly; running tasks
//     finish and the pool drains before returning, so no goroutines
//     leak past Wait.
//   - All task errors are preserved via errors.Join, not just the
//     first one.
package robust

import (
	"fmt"
	"runtime"
)

// PanicError wraps a panic recovered from a pooled task, carrying the
// panic value and the stack at the point of the panic.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("robust: task panicked: %v", e.Value)
}

// Safe invokes fn, converting a panic into a *PanicError. The stack is
// captured at recovery time so the panic site is preserved in reports.
func Safe(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Value: r, Stack: buf}
		}
	}()
	return fn()
}

// DefaultWorkers returns the default pool width: one worker per
// available CPU.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}
