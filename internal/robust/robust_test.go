package robust

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupRunsEverything(t *testing.T) {
	g := NewGroup(context.Background(), 4)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		if !g.Go(func(context.Context) error { n.Add(1); return nil }) {
			t.Fatal("Go refused without cancellation")
		}
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Errorf("ran %d tasks, want 100", n.Load())
	}
}

func TestGroupBoundsConcurrency(t *testing.T) {
	const workers = 3
	g := NewGroup(context.Background(), workers)
	var cur, peak atomic.Int64
	for i := 0; i < 50; i++ {
		g.Go(func(context.Context) error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent tasks, bound is %d", p, workers)
	}
}

func TestGroupPanicBecomesError(t *testing.T) {
	g := NewGroup(context.Background(), 2)
	g.Go(func(context.Context) error { panic("boom") })
	g.Go(func(context.Context) error { return nil })
	err := g.Wait()
	if err == nil {
		t.Fatal("panic swallowed")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}
	if pe.Value != "boom" {
		t.Errorf("panic value %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "robust") {
		t.Error("stack not captured")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("message %q does not mention the panic", err)
	}
}

func TestGroupJoinsAllErrors(t *testing.T) {
	g := NewGroup(context.Background(), 2)
	for i := 0; i < 5; i++ {
		i := i
		g.Go(func(context.Context) error {
			if i%2 == 0 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
	}
	err := g.Wait()
	if err == nil {
		t.Fatal("errors lost")
	}
	for _, want := range []string{"task 0", "task 2", "task 4"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}

func TestGroupCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(ctx, 1)
	started := make(chan struct{})
	release := make(chan struct{})
	if !g.Go(func(context.Context) error {
		close(started)
		<-release
		return nil
	}) {
		t.Fatal("first task refused")
	}
	<-started
	cancel()
	// The pool width is 1 and the single slot is occupied, so the next
	// submission must fail via the cancelled context, not block forever.
	if g.Go(func(context.Context) error { return errors.New("must not run") }) {
		t.Fatal("Go accepted a task after cancellation")
	}
	close(release)
	err := g.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Wait error %v, want context.Canceled", err)
	}
	if strings.Contains(fmt.Sprint(err), "must not run") {
		t.Error("rejected task ran anyway")
	}
}

func TestGroupCancellationRecordedOnce(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := NewGroup(ctx, 2)
	for i := 0; i < 10; i++ {
		g.Go(func(context.Context) error { return nil })
	}
	err := g.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := strings.Count(err.Error(), context.Canceled.Error()); n != 1 {
		t.Errorf("context error recorded %d times, want once: %v", n, err)
	}
}

func TestNewGroupDefaults(t *testing.T) {
	g := NewGroup(nil, 0) // nil ctx and zero width must both be usable
	ok := g.Go(func(ctx context.Context) error {
		if ctx == nil {
			return errors.New("nil ctx delivered to task")
		}
		return nil
	})
	if !ok {
		t.Fatal("task refused")
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestForEach(t *testing.T) {
	seen := make([]bool, 64)
	err := ForEach(context.Background(), 8, len(seen), func(_ context.Context, i int) error {
		seen[i] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d never ran", i)
		}
	}
}

func TestForEachStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEach(ctx, 1, 1000, func(_ context.Context, i int) error {
		if i == 3 {
			cancel()
		}
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Errorf("cancellation did not stop submissions (%d ran)", n)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	p := DefaultPolicy()
	var slept []time.Duration
	p.Sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	calls := 0
	err := Retry(context.Background(), p, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("calls %d want 3", calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	// With 20% jitter the second sleep must be near double the base.
	lo, hi := 16*time.Millisecond, 24*time.Millisecond
	if slept[1] < lo || slept[1] > hi {
		t.Errorf("second backoff %v outside [%v, %v]", slept[1], lo, hi)
	}
}

func TestRetryExhaustion(t *testing.T) {
	p := Policy{MaxAttempts: 3, Sleep: func(context.Context, time.Duration) error { return nil }}
	base := errors.New("always fails")
	calls := 0
	err := Retry(context.Background(), p, func(context.Context) error { calls++; return base })
	if calls != 3 {
		t.Errorf("calls %d want 3", calls)
	}
	if !errors.Is(err, base) {
		t.Errorf("terminal error does not wrap the last attempt: %v", err)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("message %q missing attempt count", err)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	p := Policy{MaxAttempts: 10, Sleep: func(context.Context, time.Duration) error { return nil }}
	base := errors.New("bad input")
	calls := 0
	err := Retry(context.Background(), p, func(context.Context) error {
		calls++
		return Permanent(base)
	})
	if calls != 1 {
		t.Errorf("permanent error retried: %d calls", calls)
	}
	if !errors.Is(err, base) {
		t.Errorf("lost the wrapped cause: %v", err)
	}
	if !IsPermanent(err) {
		t.Error("IsPermanent lost through return")
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) must stay nil")
	}
	if IsPermanent(base) {
		t.Error("unmarked error reported permanent")
	}
}

func TestRetryRecoversPanics(t *testing.T) {
	p := Policy{MaxAttempts: 2, Sleep: func(context.Context, time.Duration) error { return nil }}
	calls := 0
	err := Retry(context.Background(), p, func(context.Context) error {
		calls++
		if calls == 1 {
			panic("flaky")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("panic on first attempt should be retried: %v", err)
	}
	if calls != 2 {
		t.Errorf("calls %d want 2", calls)
	}
}

func TestRetryHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 100, Sleep: func(ctx context.Context, _ time.Duration) error {
		cancel()
		return ctx.Err()
	}}
	base := errors.New("transient")
	err := Retry(ctx, p, func(context.Context) error { return base })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
	if !errors.Is(err, base) {
		t.Errorf("last attempt error dropped on cancel: %v", err)
	}
}

func TestRetryBackoffCap(t *testing.T) {
	p := Policy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 30 * time.Millisecond, Multiplier: 2}
	var slept []time.Duration
	p.Sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	_ = Retry(context.Background(), p, func(context.Context) error { return errors.New("x") })
	if len(slept) != 7 {
		t.Fatalf("slept %d times, want 7", len(slept))
	}
	for i, d := range slept {
		if d > 30*time.Millisecond {
			t.Errorf("sleep %d = %v exceeds cap", i, d)
		}
	}
	if slept[6] != 30*time.Millisecond {
		t.Errorf("late backoff %v, want cap 30ms", slept[6])
	}
}

func TestJitteredBounds(t *testing.T) {
	d := 100 * time.Millisecond
	for i := 0; i < 200; i++ {
		j := jittered(d, 0.2)
		if j < 80*time.Millisecond || j > 120*time.Millisecond {
			t.Fatalf("jittered %v outside +/-20%% of %v", j, d)
		}
	}
	if jittered(d, 0) != d {
		t.Error("zero jitter must be identity")
	}
}

func TestSafePassesThrough(t *testing.T) {
	base := errors.New("plain")
	if err := Safe(func() error { return base }); err != base {
		t.Errorf("plain error mangled: %v", err)
	}
	if err := Safe(func() error { return nil }); err != nil {
		t.Errorf("nil turned into %v", err)
	}
}

func TestQuarantine(t *testing.T) {
	q := NewQuarantine("statlib")
	q.Total = 10
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Add(fmt.Sprintf("CELL_%d", i), "non-finite sigma")
			q.Add("CELL_0", "duplicate reason must lose") // dedup race check
		}()
	}
	wg.Wait()
	if q.Len() != 4 {
		t.Fatalf("len %d want 4", q.Len())
	}
	if !q.Has("CELL_2") || q.Has("CELL_9") {
		t.Error("Has wrong")
	}
	if f := q.Fraction(); f != 0.4 {
		t.Errorf("fraction %g want 0.4", f)
	}
	if err := q.Check(0.5); err != nil {
		t.Errorf("40%% under a 50%% limit must pass: %v", err)
	}
	if err := q.Check(0.3); err == nil {
		t.Error("40% over a 30% limit must fail")
	}
	es := q.Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1].Name > es[i].Name {
			t.Fatal("entries not sorted")
		}
	}
	// CELL_1 only ever gets one reason; first-wins must have kept it.
	if es[1].Name != "CELL_1" || es[1].Reason != "non-finite sigma" {
		t.Errorf("entry 1 = %+v", es[1])
	}
	r := q.Render()
	if !strings.Contains(r, "4 of 10") || !strings.Contains(r, "CELL_3") {
		t.Errorf("render missing content:\n%s", r)
	}
}

func TestQuarantineNilSafe(t *testing.T) {
	var q *Quarantine
	if q.Has("x") || q.Len() != 0 || q.Entries() != nil || q.Fraction() != 0 {
		t.Error("nil quarantine accessors must be inert")
	}
	if err := q.Check(0); err != nil {
		t.Error("nil quarantine must pass any check")
	}
}

func TestQuarantineEmptyRender(t *testing.T) {
	q := NewQuarantine("tuner")
	if r := q.Render(); !strings.Contains(r, "no cells quarantined") || !strings.Contains(r, "tuner") {
		t.Errorf("all-clear render wrong: %q", r)
	}
}
