package robust

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"stdcelltune/internal/obs"
)

// retryAttempts counts re-attempts (not first tries) across every
// Retry call in the process, exported as robust.retries.
var retryAttempts = obs.Default().Counter("robust.retries")

// Policy configures Retry: up to MaxAttempts tries with exponential
// backoff starting at BaseDelay, multiplied by Multiplier per attempt,
// capped at MaxDelay, with a uniform +/-Jitter fraction applied to each
// sleep so synchronized retriers spread out.
type Policy struct {
	MaxAttempts int
	BaseDelay   time.Duration
	MaxDelay    time.Duration
	Multiplier  float64
	Jitter      float64 // 0..1 fraction of the delay randomized

	// Sleep overrides the waiting primitive (tests). Nil uses a real
	// timer honouring context cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultPolicy retries transient failures a few times with a fast
// first retry: 5 attempts, 10ms base, x2 growth, 500ms cap, 20% jitter.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 500 * time.Millisecond, Multiplier: 2, Jitter: 0.2}
}

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps an error so Retry stops immediately instead of
// burning the remaining attempts. A nil error stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Retry invokes fn until it succeeds, returns a Permanent error, the
// context is cancelled, or MaxAttempts is exhausted. The terminal error
// wraps the last attempt's error so errors.Is/As see through it.
func Retry(ctx context.Context, p Policy, fn func(ctx context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	delay := p.BaseDelay
	var last error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return errors.Join(err, last)
		}
		last = Safe(func() error { return fn(ctx) })
		if last == nil {
			return nil
		}
		if IsPermanent(last) {
			return last
		}
		if attempt >= attempts {
			return fmt.Errorf("robust: %d attempts exhausted: %w", attempts, last)
		}
		if err := p.sleep(ctx, jittered(delay, p.Jitter)); err != nil {
			return errors.Join(err, last)
		}
		retryAttempts.Add(1)
		obs.Log().Debug("retrying", "attempt", attempt+1, "of", attempts, "err", last)
		delay = time.Duration(float64(delay) * p.Multiplier)
		if p.MaxDelay > 0 && delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// jittered spreads d uniformly over [d*(1-j), d*(1+j)]. Retry timing is
// the one place the pipeline is deliberately non-deterministic: it only
// shifts when a retry fires, never what any experiment computes.
func jittered(d time.Duration, j float64) time.Duration {
	if j <= 0 || d <= 0 {
		return d
	}
	if j > 1 {
		j = 1
	}
	f := 1 + j*(2*rand.Float64()-1)
	return time.Duration(float64(d) * f)
}
