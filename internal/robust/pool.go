package robust

import (
	"context"
	"errors"
	"sync"
	"time"

	"stdcelltune/internal/obs"
)

// Pool metrics, recorded into the process-default obs registry. The
// counters are one atomic add per event — cheap enough to stay always
// on. The latency histograms need two clock reads per task, so they
// only record while obs.TimingEnabled() (set by -trace/-debugaddr);
// the zero-flag pipeline takes no clock reads here.
var (
	poolTasks     = obs.Default().Counter("robust.pool_tasks")
	poolPanics    = obs.Default().Counter("robust.pool_panics")
	poolRejected  = obs.Default().Counter("robust.pool_rejected") // submissions refused by cancellation
	poolQueueWait = obs.Default().Histogram("robust.queue_wait")
	poolTaskTime  = obs.Default().Histogram("robust.task_time")
)

// Group is a bounded worker pool tied to a context. Tasks submitted
// with Go run on at most the configured number of goroutines; the
// semaphore is acquired by the submitter *before* the goroutine is
// spawned, so at most workers+1 goroutines ever exist regardless of
// how many tasks are queued behind it. A panicking task is recovered
// into a *PanicError; Wait returns every task error joined with
// errors.Join.
type Group struct {
	ctx    context.Context
	sem    chan struct{}
	wg     sync.WaitGroup
	mu     sync.Mutex
	errs   []error
	timing bool // snapshot of obs.TimingEnabled() at construction
}

// NewGroup creates a pool of the given width bound to ctx. A width
// below one is clamped to one; a nil ctx means context.Background().
func NewGroup(ctx context.Context, workers int) *Group {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	return &Group{ctx: ctx, sem: make(chan struct{}, workers), timing: obs.TimingEnabled()}
}

// Go submits one task. It blocks until a worker slot is free (bounding
// both goroutine count and submission rate) and returns false without
// running the task if the context is cancelled first. The task receives
// the group context and should return promptly once it is done.
func (g *Group) Go(fn func(ctx context.Context) error) bool {
	var submitted time.Time
	if g.timing {
		submitted = time.Now()
	}
	select {
	case <-g.ctx.Done():
		poolRejected.Add(1)
		g.record(g.ctx.Err())
		return false
	case g.sem <- struct{}{}:
	}
	if g.timing {
		poolQueueWait.Observe(time.Since(submitted))
	}
	poolTasks.Add(1)
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() { <-g.sem }()
		var started time.Time
		if g.timing {
			started = time.Now()
		}
		err := Safe(func() error { return fn(g.ctx) })
		if g.timing {
			poolTaskTime.Observe(time.Since(started))
		}
		if err != nil {
			g.record(err)
		}
	}()
	return true
}

func (g *Group) record(err error) {
	if err == nil {
		return
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		poolPanics.Add(1)
	}
	g.mu.Lock()
	// A cancelled context is recorded once, not once per unfinished
	// submission, so Wait's error stays readable.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		for _, e := range g.errs {
			if errors.Is(e, err) {
				g.mu.Unlock()
				return
			}
		}
	}
	g.errs = append(g.errs, err)
	g.mu.Unlock()
}

// Wait blocks until every spawned task has finished and returns all
// recorded errors joined with errors.Join (nil when none failed).
// After Wait returns no group goroutine is left running.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return errors.Join(g.errs...)
}

// ForEach runs n indexed tasks on a pool of the given width and waits
// for completion. Cancellation stops unsubmitted tasks; already-running
// tasks drain before ForEach returns. The returned error joins every
// task error (and the context error, once, if cancelled).
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	return ForEachNamed(ctx, "pool.batch", workers, n, fn)
}

// ForEachNamed is ForEach wrapped in a trace span carrying the batch
// name, the task count and the pool width — one span per batch, not per
// task, so a thousand-path analysis stays one readable row in the
// trace. With no tracer on ctx the span is free (nil no-op).
func ForEachNamed(ctx context.Context, name string, workers, n int, fn func(ctx context.Context, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	span := obs.TracerFrom(ctx).Start(name, "pool", "tasks", n, "workers", workers)
	defer span.End()
	g := NewGroup(ctx, workers)
	for i := 0; i < n; i++ {
		i := i
		if !g.Go(func(ctx context.Context) error { return fn(ctx, i) }) {
			break
		}
	}
	return g.Wait()
}
