// Package sdc parses the subset of Synopsys Design Constraints that the
// flow consumes: clock definition, clock uncertainty, input transition,
// output load and max fanout/capacitance overrides. Real synthesis runs
// are driven by .sdc files; this keeps the reproduction's command-line
// tools compatible with that workflow.
//
// Supported commands:
//
//	create_clock -period <ns> [-name <name>]
//	set_clock_uncertainty <ns>
//	set_input_transition <ns>
//	set_load <pF>
//	set_max_capacitance <pF>
//	set_max_fanout <n>
//
// Lines starting with '#' are comments; unknown commands error (so typos
// do not silently drop constraints).
package sdc

import (
	"fmt"
	"strconv"
	"strings"

	"stdcelltune/internal/sta"
)

// Constraints is the parsed constraint set.
type Constraints struct {
	ClockName       string
	ClockPeriod     float64
	Uncertainty     float64
	InputTransition float64
	OutputLoad      float64
	MaxCapacitance  float64 // 0 = library limits apply
	MaxFanout       int     // 0 = unlimited
}

// Parse reads SDC text.
func Parse(src string) (*Constraints, error) {
	c := &Constraints{ClockName: "clk"}
	seenClock := false
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cmd := fields[0]
		args := fields[1:]
		var err error
		switch cmd {
		case "create_clock":
			err = c.parseCreateClock(args)
			seenClock = err == nil
		case "set_clock_uncertainty":
			c.Uncertainty, err = oneFloat(cmd, args)
		case "set_input_transition":
			c.InputTransition, err = oneFloat(cmd, args)
		case "set_load":
			c.OutputLoad, err = oneFloat(cmd, args)
		case "set_max_capacitance":
			c.MaxCapacitance, err = oneFloat(cmd, args)
		case "set_max_fanout":
			var v float64
			v, err = oneFloat(cmd, args)
			c.MaxFanout = int(v)
		default:
			err = fmt.Errorf("unknown command %q", cmd)
		}
		if err != nil {
			return nil, fmt.Errorf("sdc: line %d: %w", ln+1, err)
		}
	}
	if !seenClock {
		return nil, fmt.Errorf("sdc: no create_clock")
	}
	if c.ClockPeriod <= 0 {
		return nil, fmt.Errorf("sdc: non-positive clock period %g", c.ClockPeriod)
	}
	return c, nil
}

func (c *Constraints) parseCreateClock(args []string) error {
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-period":
			if i+1 >= len(args) {
				return fmt.Errorf("create_clock: -period needs a value")
			}
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil {
				return fmt.Errorf("create_clock: bad period %q", args[i+1])
			}
			c.ClockPeriod = v
			i++
		case "-name":
			if i+1 >= len(args) {
				return fmt.Errorf("create_clock: -name needs a value")
			}
			c.ClockName = args[i+1]
			i++
		default:
			// Port list arguments ([get_ports clk]) are accepted and
			// ignored: the flow has a single ideal clock.
		}
	}
	return nil
}

func oneFloat(cmd string, args []string) (float64, error) {
	if len(args) < 1 {
		return 0, fmt.Errorf("%s: missing value", cmd)
	}
	v, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		return 0, fmt.Errorf("%s: bad value %q", cmd, args[0])
	}
	return v, nil
}

// STAConfig converts the constraints into a timing context, starting
// from the flow defaults for anything the SDC leaves unset.
func (c *Constraints) STAConfig() sta.Config {
	cfg := sta.DefaultConfig(c.ClockPeriod)
	if c.Uncertainty > 0 {
		cfg.Uncertainty = c.Uncertainty
	}
	if c.InputTransition > 0 {
		cfg.InputSlew = c.InputTransition
	}
	if c.OutputLoad > 0 {
		cfg.OutputLoad = c.OutputLoad
	}
	return cfg
}

// Write serializes the constraints back to SDC text.
func (c *Constraints) Write() string {
	var b strings.Builder
	fmt.Fprintf(&b, "create_clock -name %s -period %g\n", c.ClockName, c.ClockPeriod)
	if c.Uncertainty > 0 {
		fmt.Fprintf(&b, "set_clock_uncertainty %g\n", c.Uncertainty)
	}
	if c.InputTransition > 0 {
		fmt.Fprintf(&b, "set_input_transition %g\n", c.InputTransition)
	}
	if c.OutputLoad > 0 {
		fmt.Fprintf(&b, "set_load %g\n", c.OutputLoad)
	}
	if c.MaxCapacitance > 0 {
		fmt.Fprintf(&b, "set_max_capacitance %g\n", c.MaxCapacitance)
	}
	if c.MaxFanout > 0 {
		fmt.Fprintf(&b, "set_max_fanout %d\n", c.MaxFanout)
	}
	return b.String()
}
