package sdc

import (
	"strings"
	"testing"
)

func TestParseFull(t *testing.T) {
	src := `
# high performance constraints
create_clock -name core_clk -period 2.41 [get_ports clk]
set_clock_uncertainty 0.3
set_input_transition 0.05
set_load 0.005
set_max_capacitance 0.1
set_max_fanout 16
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.ClockName != "core_clk" || c.ClockPeriod != 2.41 {
		t.Errorf("clock %+v", c)
	}
	if c.Uncertainty != 0.3 || c.InputTransition != 0.05 || c.OutputLoad != 0.005 {
		t.Errorf("timing context %+v", c)
	}
	if c.MaxCapacitance != 0.1 || c.MaxFanout != 16 {
		t.Errorf("limits %+v", c)
	}
	cfg := c.STAConfig()
	if cfg.ClockPeriod != 2.41 || cfg.Uncertainty != 0.3 || cfg.InputSlew != 0.05 || cfg.OutputLoad != 0.005 {
		t.Errorf("STA config %+v", cfg)
	}
}

func TestParseDefaults(t *testing.T) {
	c, err := Parse("create_clock -period 4\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.ClockName != "clk" {
		t.Errorf("default clock name %q", c.ClockName)
	}
	cfg := c.STAConfig()
	// Unset values fall back to the flow defaults.
	if cfg.Uncertainty != 0.3 || cfg.InputSlew != 0.05 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                     // no clock
		"set_clock_uncertainty 0.3",            // no clock
		"create_clock -period nope",            // bad float
		"create_clock -period",                 // missing value
		"create_clock -period 2 -name",         // missing name
		"create_clock -period -2",              // non-positive
		"create_clock -period 2\nfrobnicate 1", // unknown command
		"create_clock -period 2\nset_load",     // missing value
		"create_clock -period 2\nset_load x",   // bad value
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	c, err := Parse("create_clock -name k -period 3.5\nset_clock_uncertainty 0.2\nset_max_fanout 8\n")
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(c.Write())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, c.Write())
	}
	if *back != *c {
		t.Errorf("round trip changed constraints:\n%+v\n%+v", c, back)
	}
	if !strings.Contains(c.Write(), "create_clock -name k -period 3.5") {
		t.Errorf("write format: %s", c.Write())
	}
}
