// Custom library: tune a hand-written statistical library through the
// public API. This is the path a user with their own characterization
// data follows: write (or load) an LVF-style Liberty file with
// ocv_sigma_cell_* tables, parse it, and run any tuning method on it.
package main

import (
	"fmt"
	"log"
	"strings"

	"stdcelltune"
	"stdcelltune/internal/statlib"
)

// A miniature two-cell statistical library in LVF-flavoured Liberty: an
// inverter in two drive strengths. Sigma grows with load and slew, and
// the bigger drive is flatter — the structure real characterization
// produces.
const customLib = `
library (my_stat_lib) {
  time_unit : "1ns";
  capacitive_load_unit (1, pf);
  cell (MYINV_1) {
    area : 1.0;
    drive_strength : 1;
    pin (A) { direction : input; capacitance : 0.0012; }
    pin (Y) {
      direction : output;
      max_capacitance : 0.04;
      timing () {
        related_pin : "A";
        cell_rise (t) {
          index_1 ("0.005, 0.02, 0.04");
          index_2 ("0.01, 0.1, 0.5");
          values ("0.030, 0.035, 0.060", \
                  "0.060, 0.070, 0.110", \
                  "0.100, 0.120, 0.180");
        }
        cell_fall (t) {
          index_1 ("0.005, 0.02, 0.04");
          index_2 ("0.01, 0.1, 0.5");
          values ("0.028, 0.033, 0.057", \
                  "0.057, 0.066, 0.104", \
                  "0.095, 0.114, 0.171");
        }
        ocv_sigma_cell_rise (t) {
          index_1 ("0.005, 0.02, 0.04");
          index_2 ("0.01, 0.1, 0.5");
          values ("0.002, 0.003, 0.009", \
                  "0.004, 0.006, 0.016", \
                  "0.008, 0.012, 0.030");
        }
        ocv_sigma_cell_fall (t) {
          index_1 ("0.005, 0.02, 0.04");
          index_2 ("0.01, 0.1, 0.5");
          values ("0.002, 0.003, 0.008", \
                  "0.004, 0.006, 0.015", \
                  "0.007, 0.011, 0.028");
        }
      }
    }
  }
  cell (MYINV_4) {
    area : 2.2;
    drive_strength : 4;
    pin (A) { direction : input; capacitance : 0.0048; }
    pin (Y) {
      direction : output;
      max_capacitance : 0.16;
      timing () {
        related_pin : "A";
        cell_rise (t) {
          index_1 ("0.02, 0.08, 0.16");
          index_2 ("0.01, 0.1, 0.5");
          values ("0.030, 0.035, 0.060", \
                  "0.060, 0.070, 0.110", \
                  "0.100, 0.120, 0.180");
        }
        cell_fall (t) {
          index_1 ("0.02, 0.08, 0.16");
          index_2 ("0.01, 0.1, 0.5");
          values ("0.028, 0.033, 0.057", \
                  "0.057, 0.066, 0.104", \
                  "0.095, 0.114, 0.171");
        }
        ocv_sigma_cell_rise (t) {
          index_1 ("0.02, 0.08, 0.16");
          index_2 ("0.01, 0.1, 0.5");
          values ("0.001, 0.0015, 0.004", \
                  "0.002, 0.0030, 0.008", \
                  "0.004, 0.0060, 0.015");
        }
        ocv_sigma_cell_fall (t) {
          index_1 ("0.02, 0.08, 0.16");
          index_2 ("0.01, 0.1, 0.5");
          values ("0.001, 0.0014, 0.004", \
                  "0.002, 0.0028, 0.007", \
                  "0.004, 0.0055, 0.014");
        }
      }
    }
  }
}
`

func main() {
	log.SetFlags(0)
	lib, err := stdcelltune.ParseLiberty(customLib)
	if err != nil {
		log.Fatal(err)
	}
	stat, err := statlib.FromLiberty(lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded statistical library %q with %d cells\n\n", lib.Name, len(stat.Cells))

	for _, bound := range []float64{0.02, 0.008, 0.003} {
		windows, rep, err := stdcelltune.Tune(stat, stdcelltune.SigmaCeiling, bound)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sigma ceiling %.3f ns:\n", bound)
		for _, p := range rep.Pins {
			w, _ := windows.Window(p.Cell, p.Pin)
			status := fmt.Sprintf("keep %.0f%% of LUT, window %s", 100*p.Retained, w)
			if p.Excluded {
				status = "EXCLUDED (no usable region)"
			}
			fmt.Printf("  %-10s %s\n", p.Cell+"/"+p.Pin, status)
		}
		fmt.Println(strings.Repeat("-", 60))
	}
	fmt.Println("the high-drive cell keeps more of its LUT at every ceiling (Pelgrom)")
}
