// Corner validation: the Section VII.C experiments as an application.
// Extract short/medium/long worst paths from a synthesized design, run
// 200-sample Monte Carlo per process corner (Fig. 15) and decompose the
// total variation into its global and local components (Fig. 16).
package main

import (
	"fmt"
	"log"

	"stdcelltune"
	"stdcelltune/internal/pathmc"
	"stdcelltune/internal/rtlgen"
)

func main() {
	log.SetFlags(0)
	cat := stdcelltune.NewCatalogue(stdcelltune.Typical)
	mcu, err := stdcelltune.NewMCUWith(rtlgen.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := stdcelltune.Synthesize(mcu, cat, 3.0, nil)
	if err != nil {
		log.Fatal(err)
	}
	var paths = res.Timing.WorstPaths()
	nonEmpty := paths[:0]
	for _, p := range paths {
		if p.Depth() > 0 {
			nonEmpty = append(nonEmpty, p)
		}
	}
	picked := pathmc.PickPaths(nonEmpty, 3, 12, 25)
	cfg := pathmc.DefaultConfig(7)

	fmt.Println("=== Fig 15: corner scaling (Monte Carlo N=200) ===")
	for _, p := range picked {
		pts, err := pathmc.CornerSweep(p, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("path depth %d:\n", p.Depth())
		for _, c := range pts {
			fmt.Printf("  %-8s mean %.4f ns (x%.2f)   sigma %.5f ns (x%.2f)\n",
				c.Corner, c.Stats.Mu, c.RelMean, c.Stats.Sigma, c.RelSigma)
		}
	}
	fmt.Println("mean and sigma move together across corners: tuning at TT transfers")

	fmt.Println("\n=== Fig 16: local-variation contribution ===")
	for _, p := range picked {
		d, err := pathmc.Decompose(p, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("path depth %-3d sigma total %.5f, local-only %.5f  ->  local share %.0f%%\n",
			p.Depth(), d.Total.Sigma, d.LocalOnly.Sigma, 100*d.LocalShare)
	}
	fmt.Println("local variation dominates short paths and decays with depth")
}
