// Clock tree: the paper's future-work question, answered as an
// application. Synthesize the MCU, place it, build a clock tree over the
// flip-flops, and compare the skew statistics of an unrestricted tree
// against one built under sigma-ceiling windows.
package main

import (
	"fmt"
	"log"

	"stdcelltune"
	"stdcelltune/internal/cts"
	"stdcelltune/internal/place"
	"stdcelltune/internal/rtlgen"
)

func main() {
	log.SetFlags(0)
	cat := stdcelltune.NewCatalogue(stdcelltune.Typical)
	stat, err := stdcelltune.Characterize(cat, 30, 1)
	if err != nil {
		log.Fatal(err)
	}
	mcu, err := stdcelltune.NewMCUWith(rtlgen.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := stdcelltune.Synthesize(mcu, cat, 4.0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized: %d cells, %d flip-flops\n",
		len(res.Netlist.Instances), len(res.Netlist.Sequentials()))

	p, err := place.Place(res.Netlist, place.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed: %d rows, die %.0f x %.0f um, wirelength %.0f um\n\n",
		p.Rows, p.Width, p.Height(), p.TotalHPWL())

	baseTree, baseA, err := cts.BuildLegal(p, cat, stat, cts.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	windows, _, err := stdcelltune.Tune(stat, stdcelltune.SigmaCeiling, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	cfg := cts.DefaultConfig()
	cfg.Windows = windows
	tunedTree, tunedA, err := cts.BuildLegal(p, cat, stat, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-9s %-7s %-18s %-16s\n", "tree", "buffers", "levels", "nominal skew (ns)", "skew sigma (ns)")
	fmt.Printf("%-10s %-9d %-7d %-18.5f %-16.5f\n", "baseline",
		baseTree.BufferCount(), baseTree.Levels, baseA.NominalSkew(), baseA.WorstSkewSigma)
	fmt.Printf("%-10s %-9d %-7d %-18.5f %-16.5f\n", "tuned",
		tunedTree.BufferCount(), tunedTree.Levels, tunedA.NominalSkew(), tunedA.WorstSkewSigma)
	fmt.Printf("\nskew sigma reduction: %.0f%%\n",
		100*(baseA.WorstSkewSigma-tunedA.WorstSkewSigma)/baseA.WorstSkewSigma)
	fmt.Println("the library tuning transfers to the clock tree (paper Section VIII, future work)")
}
