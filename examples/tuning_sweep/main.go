// Tuning sweep: the Fig. 11 experiment as an application — sweep the
// sigma-ceiling bound at one clock and print the sigma-reduction versus
// area-increase trade-off, demonstrating how a designer dials robustness
// against cost.
package main

import (
	"fmt"
	"log"

	"stdcelltune"
	"stdcelltune/internal/rtlgen"
)

func main() {
	log.SetFlags(0)
	cat := stdcelltune.NewCatalogue(stdcelltune.Typical)
	stat, err := stdcelltune.Characterize(cat, 50, 1)
	if err != nil {
		log.Fatal(err)
	}
	// The scaled-down MCU keeps the sweep quick; swap for NewMCU() to
	// run at paper scale.
	mcu, err := stdcelltune.NewMCUWith(rtlgen.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	const clock = 3.0
	base, err := stdcelltune.Synthesize(mcu, cat, clock, nil)
	if err != nil {
		log.Fatal(err)
	}
	bs, err := stdcelltune.AnalyzeVariation(base, stat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline @ %.1f ns: sigma %.4f ns, area %.0f um2\n\n", clock, bs.Design.Sigma, base.Area())
	fmt.Printf("%-10s %-6s %-12s %-12s %-12s\n", "ceiling", "met", "sigma (ns)", "sigma dec %", "area inc %")

	for _, bound := range stdcelltune.SweepBounds(stdcelltune.SigmaCeiling) {
		windows, _, err := stdcelltune.Tune(stat, stdcelltune.SigmaCeiling, bound)
		if err != nil {
			log.Fatal(err)
		}
		res, err := stdcelltune.Synthesize(mcu, cat, clock, windows)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Met {
			fmt.Printf("%-10g %-6v %-12s %-12s %-12s\n", bound, false, "-", "-", "-")
			continue
		}
		ds, err := stdcelltune.AnalyzeVariation(res, stat)
		if err != nil {
			log.Fatal(err)
		}
		cmp := stdcelltune.Compare{
			BaselineSigma: bs.Design.Sigma, TunedSigma: ds.Design.Sigma,
			BaselineArea: base.Area(), TunedArea: res.Area(),
		}
		fmt.Printf("%-10g %-6v %-12.4f %-12.1f %-12.1f\n",
			bound, true, ds.Design.Sigma, 100*cmp.SigmaReduction(), 100*cmp.AreaIncrease())
	}
	fmt.Println("\ntighter ceilings buy more sigma reduction for more area — pick your point")
}
