// Quickstart: the end-to-end library tuning flow on the evaluation
// microcontroller — characterize, tune with the sigma-ceiling method,
// synthesize baseline and restricted designs, and compare design sigma
// and area (the paper's headline experiment in miniature).
package main

import (
	"context"
	"fmt"
	"log"

	"stdcelltune"
)

func main() {
	log.SetFlags(0)
	// Every pipeline stage takes a context: cancelling it aborts the
	// stage promptly with stdcelltune.ErrCancelled. A plain Background
	// context means "run to completion".
	ctx := context.Background()

	// 1. The 304-cell library at the typical corner (TT, 1.1V, 25C).
	cat := stdcelltune.NewCatalogue(stdcelltune.Typical)
	fmt.Printf("catalogue: %d cells at corner %s\n", len(cat.Lib.Cells), cat.Corner.Name())

	// 2. Monte-Carlo characterization: 50 library instances with local
	// variation folded into a statistical library (mean + sigma LUTs).
	stat, err := stdcelltune.CharacterizeCtx(ctx, cat,
		stdcelltune.CharacterizeOptions{Instances: 50, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statistical library: %d instances folded, max sigma %.4f ns\n",
		stat.Samples, stat.MaxSigma())

	// 3. Tune: restrict every cell's LUT to the region where its delay
	// sigma stays below a 0.02 ns ceiling.
	windows, rep, err := stdcelltune.TuneCtx(ctx, stat,
		stdcelltune.TuneOptions{Method: stdcelltune.SigmaCeiling, Bound: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuning: %d pin windows, %d pins fully excluded\n",
		windows.Len(), rep.ExcludedPins())

	// 4. The evaluation design: a ~20k-gate 32-bit microcontroller.
	mcu, err := stdcelltune.NewMCU()
	if err != nil {
		log.Fatal(err)
	}

	// 5. Synthesize baseline and restricted designs at 5 ns.
	const clock = 5.0
	base, err := stdcelltune.SynthesizeCtx(ctx, mcu, cat,
		stdcelltune.SynthesizeOptions{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := stdcelltune.SynthesizeCtx(ctx, mcu, cat,
		stdcelltune.SynthesizeOptions{Clock: clock, Windows: windows})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: met=%v area=%.0f um2 (%d cells)\n", base.Met, base.Area(), len(base.Netlist.Instances))
	fmt.Printf("tuned:    met=%v area=%.0f um2 (%d cells)\n", tuned.Met, tuned.Area(), len(tuned.Netlist.Instances))

	// 6. Statistical timing: the design sigma before and after tuning.
	bs, err := stdcelltune.AnalyzeVariationCtx(ctx, base, stat, stdcelltune.AnalyzeVariationOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ts, err := stdcelltune.AnalyzeVariationCtx(ctx, tuned, stat, stdcelltune.AnalyzeVariationOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cmp := stdcelltune.Compare{
		BaselineSigma: bs.Design.Sigma, TunedSigma: ts.Design.Sigma,
		BaselineArea: base.Area(), TunedArea: tuned.Area(),
	}
	fmt.Printf("design sigma: %.4f -> %.4f ns  (%.0f%% reduction)\n",
		bs.Design.Sigma, ts.Design.Sigma, 100*cmp.SigmaReduction())
	fmt.Printf("area cost:    %.0f -> %.0f um2 (%.1f%% increase)\n",
		base.Area(), tuned.Area(), 100*cmp.AreaIncrease())
}
