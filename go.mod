module stdcelltune

go 1.22
