// Equivalence harness for the flat-backed LUT: every timing table of the
// full 304-cell library must answer Lookup/MaxEquivalent/Threshold
// bit-identically to the seed implementation (per-row allocations, plain
// binary search, no segment hint). The reference below is that seed
// algorithm reimplemented verbatim over the exported fields, and the
// shadow tables it runs against are struct literals — which the lut
// package keeps on the pre-flat code path — so any divergence in the
// contiguous backing or the hint memoization fails here, not in a
// downstream figure.
package stdcelltune_test

import (
	"math"
	"sort"
	"testing"

	"stdcelltune/internal/liberty"
	"stdcelltune/internal/lut"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/variation"
)

// seedSegment is the seed's segment() verbatim (pre NaN-guard; the
// harness never feeds it NaN).
func seedSegment(axis []float64, x float64) (int, float64) {
	n := len(axis)
	if n == 1 {
		return 0, 0
	}
	if x <= axis[0] {
		return 0, 0
	}
	if x >= axis[n-1] {
		return n - 2, 1
	}
	i := sort.SearchFloat64s(axis, x)
	lo := i - 1
	frac := (x - axis[lo]) / (axis[i] - axis[lo])
	return lo, frac
}

func seedLerp(a, b, f float64) float64 { return a + (b-a)*f }

// seedLookup is the seed's Table.Lookup verbatim, reading the exported
// Values rows only.
func seedLookup(t *lut.Table, load, slew float64) float64 {
	li, lf := seedSegment(t.Loads, load)
	sj, sf := seedSegment(t.Slews, slew)
	if len(t.Loads) == 1 && len(t.Slews) == 1 {
		return t.Values[0][0]
	}
	if len(t.Loads) == 1 {
		return seedLerp(t.Values[0][sj], t.Values[0][sj+1], sf)
	}
	if len(t.Slews) == 1 {
		return seedLerp(t.Values[li][0], t.Values[li+1][0], lf)
	}
	q11 := t.Values[li][sj]
	q21 := t.Values[li+1][sj]
	q12 := t.Values[li][sj+1]
	q22 := t.Values[li+1][sj+1]
	p1 := seedLerp(q11, q21, lf)
	p2 := seedLerp(q12, q22, lf)
	return seedLerp(p1, p2, sf)
}

// shadow deep-copies a table into a struct literal with per-row slices:
// no contiguous backing, no hint — the lut package's fallback path,
// which is the seed code unchanged.
func shadow(t *lut.Table) *lut.Table {
	s := &lut.Table{
		Loads:  append([]float64(nil), t.Loads...),
		Slews:  append([]float64(nil), t.Slews...),
		Values: make([][]float64, len(t.Values)),
	}
	for i, row := range t.Values {
		s.Values[i] = append([]float64(nil), row...)
	}
	return s
}

// queryPoints spans every regime of one axis: each grid point exactly,
// each segment midpoint and a skewed interior point, below/above range,
// and the exact endpoints.
func queryPoints(axis []float64) []float64 {
	pts := append([]float64(nil), axis...)
	for i := 1; i < len(axis); i++ {
		pts = append(pts,
			(axis[i-1]+axis[i])/2,
			axis[i-1]+0.3141592653589793*(axis[i]-axis[i-1]),
		)
	}
	lo, hi := axis[0], axis[len(axis)-1]
	span := hi - lo
	if span == 0 {
		span = 1
	}
	pts = append(pts, lo-span, lo-1e-12, hi+1e-12, hi+span, math.Inf(-1), math.Inf(1))
	return pts
}

// libraryTables walks every timing table of every arc of every cell.
func libraryTables(t *testing.T, lib *liberty.Library, visit func(cell, kind string, tb *lut.Table)) {
	t.Helper()
	n := 0
	for _, cell := range lib.Cells {
		for _, pin := range cell.Pins {
			for _, arc := range pin.Timing {
				for _, nt := range []struct {
					kind string
					tb   *lut.Table
				}{
					{"cell_rise", arc.CellRise},
					{"cell_fall", arc.CellFall},
					{"rise_transition", arc.RiseTransition},
					{"fall_transition", arc.FallTransition},
					{"sigma_rise", arc.SigmaRise},
					{"sigma_fall", arc.SigmaFall},
				} {
					if nt.tb == nil {
						continue
					}
					visit(cell.Name, nt.kind, nt.tb)
					n++
				}
			}
		}
	}
	if n == 0 {
		t.Fatal("library walk visited no tables")
	}
}

// TestFlatLookupBitIdenticalAcrossLibrary: for every table of the
// 304-cell catalogue and every query regime, the flat-backed Lookup —
// cold and with a warm (possibly wrong-segment) hint — returns the very
// bits the seed implementation returns.
func TestFlatLookupBitIdenticalAcrossLibrary(t *testing.T) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	if got := len(cat.Lib.Cells); got != 304 {
		t.Fatalf("catalogue has %d cells, want the paper's 304", got)
	}
	queries := 0
	libraryTables(t, cat.Lib, func(cell, kind string, tb *lut.Table) {
		loads := queryPoints(tb.Loads)
		slews := queryPoints(tb.Slews)
		for _, l := range loads {
			for _, s := range slews {
				want := seedLookup(tb, l, s)
				// Two calls back to back: the first may run the binary
				// search and set the hint, the second takes the hint path
				// (or rejects a stale one) — both must match the seed.
				for pass := 0; pass < 2; pass++ {
					got := tb.Lookup(l, s)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("%s %s Lookup(%g,%g) pass %d = %x want %x (%g vs %g)",
							cell, kind, l, s, pass, math.Float64bits(got), math.Float64bits(want), got, want)
					}
				}
				queries++
			}
		}
	})
	t.Logf("compared %d query points bit-for-bit", queries)
}

// TestStatlibSlabBitIdenticalAcrossLibrary: the statistical library's
// slab-carved structure-of-arrays tables must answer Lookup bit-for-bit
// like the PR 6 representation (one heap-allocated table per arc on the
// per-row seed code path). Every Mean/Sigma table of every folded cell
// is shadow-copied into a struct literal and queried across the full
// regime grid — grid points, midpoints, skewed interior points, out of
// range, infinities — cold and with a warm hint.
func TestStatlibSlabBitIdenticalAcrossLibrary(t *testing.T) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	libs := variation.Instances(cat, variation.Config{N: 8, Seed: 1, CharNoise: 0.02})
	stat, err := statlib.Build("slab-equiv", libs)
	if err != nil {
		t.Fatal(err)
	}
	tables, queries := 0, 0
	for _, name := range stat.CellOrder {
		cell := stat.Cell(name)
		if cell == nil {
			continue // quarantined
		}
		for _, pin := range cell.Pins {
			for _, arc := range pin.Arcs {
				for _, nt := range []struct {
					kind string
					tb   *lut.Table
				}{
					{"mean_rise", arc.MeanRise},
					{"mean_fall", arc.MeanFall},
					{"sigma_rise", arc.SigmaRise},
					{"sigma_fall", arc.SigmaFall},
				} {
					if nt.tb == nil {
						continue
					}
					if !nt.tb.Contiguous() {
						t.Fatalf("%s %s %s: table not slab-backed", name, pin.Name, nt.kind)
					}
					ref := shadow(nt.tb)
					for _, l := range queryPoints(nt.tb.Loads) {
						for _, s := range queryPoints(nt.tb.Slews) {
							want := seedLookup(ref, l, s)
							for pass := 0; pass < 2; pass++ {
								got := nt.tb.Lookup(l, s)
								if math.Float64bits(got) != math.Float64bits(want) {
									t.Fatalf("%s %s %s Lookup(%g,%g) pass %d = %x want %x (%g vs %g)",
										name, pin.Name, nt.kind, l, s, pass,
										math.Float64bits(got), math.Float64bits(want), got, want)
								}
							}
							queries++
						}
					}
					tables++
				}
			}
		}
	}
	if tables == 0 {
		t.Fatal("statistical library walk visited no tables")
	}
	t.Logf("compared %d tables, %d query points bit-for-bit", tables, queries)
}

// TestFlatMaxEquivalentAndThresholdAcrossLibrary folds and thresholds
// every pin's arc tables twice — once through the flat-backed tables,
// once through struct-literal shadows on the seed code path — and
// demands bit-identical grids and identical masks.
func TestFlatMaxEquivalentAndThresholdAcrossLibrary(t *testing.T) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	folds := 0
	for _, cell := range cat.Lib.Cells {
		for _, pin := range cell.Pins {
			var flat, shad []*lut.Table
			for _, arc := range pin.Timing {
				if arc.CellRise == nil {
					continue
				}
				flat = append(flat, arc.CellRise)
				shad = append(shad, shadow(arc.CellRise))
			}
			if len(flat) == 0 {
				continue
			}
			fm, err := lut.MaxEquivalent(flat...)
			if err != nil {
				continue // mismatched axes fold the same way on both sides
			}
			sm, err := lut.MaxEquivalent(shad...)
			if err != nil {
				t.Fatalf("%s/%s: shadow fold failed where flat fold succeeded: %v", cell.Name, pin.Name, err)
			}
			nl, ns := fm.Dims()
			for i := 0; i < nl; i++ {
				for j := 0; j < ns; j++ {
					if math.Float64bits(fm.At(i, j)) != math.Float64bits(sm.At(i, j)) {
						t.Fatalf("%s/%s: MaxEquivalent[%d][%d] flat %g shadow %g",
							cell.Name, pin.Name, i, j, fm.At(i, j), sm.At(i, j))
					}
				}
			}
			// Threshold at values that straddle the table: below min (all
			// zeros), the exact median entry (mixed), above max (all ones).
			for _, limit := range []float64{fm.Min(), (fm.Min() + fm.Max()) / 2, fm.Max() + 1} {
				fb, sb := fm.Threshold(limit), sm.Threshold(limit)
				for i := 0; i < nl; i++ {
					for j := 0; j < ns; j++ {
						if fb.Ones[i][j] != sb.Ones[i][j] {
							t.Fatalf("%s/%s: Threshold(%g)[%d][%d] flat %v shadow %v",
								cell.Name, pin.Name, limit, i, j, fb.Ones[i][j], sb.Ones[i][j])
						}
					}
				}
			}
			folds++
		}
	}
	if folds == 0 {
		t.Fatal("no pins folded")
	}
	t.Logf("checked %d pin folds", folds)
}
